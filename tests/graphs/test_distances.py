"""Unit tests for BFS distances, eccentricities and diameters (networkx as oracle)."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.graphs.conversion import to_networkx
from repro.graphs.distances import (
    UNREACHABLE,
    bfs_distances,
    bfs_tree,
    diameter,
    distance_matrix,
    double_sweep_diameter_lower_bound,
    eccentricity,
    farthest_node,
    multi_source_bfs,
)
from repro.graphs.graph import Graph

nx = pytest.importorskip("networkx")


class TestBfs:
    def test_path_distances(self):
        g = generators.path_graph(6)
        dist = bfs_distances(g, 0)
        assert list(dist) == [0, 1, 2, 3, 4, 5]

    def test_cycle_distances(self):
        g = generators.cycle_graph(8)
        dist = bfs_distances(g, 0)
        assert dist[4] == 4
        assert dist[7] == 1

    def test_matches_networkx_on_portfolio(self, small_graphs):
        for g in small_graphs:
            nxg = to_networkx(g)
            for source in range(0, g.num_nodes, 3):
                expected = nx.single_source_shortest_path_length(nxg, source)
                dist = bfs_distances(g, source)
                for v, d in expected.items():
                    assert dist[v] == d

    def test_unreachable_marked(self):
        g = Graph.from_edges(4, [(0, 1)])
        dist = bfs_distances(g, 0)
        assert dist[2] == UNREACHABLE and dist[3] == UNREACHABLE

    def test_cutoff_truncates(self):
        g = generators.path_graph(10)
        dist = bfs_distances(g, 0, cutoff=3)
        assert dist[3] == 3
        assert dist[4] == UNREACHABLE

    def test_cutoff_zero(self):
        g = generators.path_graph(5)
        dist = bfs_distances(g, 2, cutoff=0)
        assert dist[2] == 0
        assert np.count_nonzero(dist != UNREACHABLE) == 1

    def test_negative_cutoff_rejected(self):
        g = generators.path_graph(5)
        with pytest.raises(ValueError):
            bfs_distances(g, 0, cutoff=-1)

    def test_bfs_tree_parents(self):
        g = generators.path_graph(5)
        dist, parent = bfs_tree(g, 2)
        assert parent[2] == 2
        assert parent[0] == 1 and parent[1] == 2
        assert parent[4] == 3
        assert list(dist) == [2, 1, 0, 1, 2]

    def test_multi_source(self):
        g = generators.path_graph(9)
        dist = multi_source_bfs(g, [0, 8])
        assert dist[4] == 4
        assert dist[1] == 1
        assert dist[7] == 1


class TestAggregates:
    def test_distance_matrix_symmetry(self, cycle12):
        mat = distance_matrix(cycle12)
        assert np.array_equal(mat, mat.T)
        assert np.all(np.diag(mat) == 0)

    def test_eccentricity_and_diameter(self):
        g = generators.path_graph(7)
        assert eccentricity(g, 0) == 6
        assert eccentricity(g, 3) == 3
        assert diameter(g) == 6

    def test_diameter_matches_networkx(self, small_graphs):
        for g in small_graphs:
            assert diameter(g) == nx.diameter(to_networkx(g))

    def test_eccentricity_disconnected_raises(self):
        g = Graph.from_edges(3, [(0, 1)])
        with pytest.raises(ValueError):
            eccentricity(g, 0)

    def test_diameter_disconnected_raises(self):
        g = Graph.from_edges(3, [(0, 1)])
        with pytest.raises(ValueError):
            diameter(g)

    def test_farthest_node(self):
        g = generators.path_graph(10)
        node, dist = farthest_node(g, 0)
        assert node == 9 and dist == 9

    def test_double_sweep_exact_on_trees(self, random_tree_64):
        _, _, d = double_sweep_diameter_lower_bound(random_tree_64)
        assert d == diameter(random_tree_64)

    def test_double_sweep_is_lower_bound(self, small_graphs):
        for g in small_graphs:
            _, _, d = double_sweep_diameter_lower_bound(g)
            assert d <= diameter(g)

    def test_inexact_diameter_uses_double_sweep(self, grid4x4):
        assert diameter(grid4x4, exact=False) <= diameter(grid4x4)

    def test_inexact_diameter_disconnected_raises(self):
        # Regression: exact=False used to silently return the within-component
        # sweep while exact=True raised; both modes now raise.
        g = Graph.from_edges(5, [(0, 1), (1, 2), (3, 4)])
        with pytest.raises(ValueError):
            diameter(g, exact=False)
        with pytest.raises(ValueError):
            diameter(g, exact=True)

    def test_double_sweep_is_component_restricted(self):
        # Documented contract: the heuristic stays inside the start component.
        g = Graph.from_edges(7, [(0, 1), (1, 2), (2, 3), (4, 5)])
        a, b, d = double_sweep_diameter_lower_bound(g, start=1)
        assert {a, b} <= {0, 1, 2, 3}
        assert d == 3
        a, b, d = double_sweep_diameter_lower_bound(g, start=4)
        assert {a, b} <= {4, 5}
        assert d == 1

    def test_double_sweep_isolated_start_degenerates(self):
        g = Graph.from_edges(4, [(0, 1)])
        a, b, d = double_sweep_diameter_lower_bound(g, start=3)
        assert (a, b, d) == (3, 3, 0)


class TestLegacyReference:
    def test_legacy_matches_engine(self, small_graphs):
        from repro.graphs.distances import legacy_bfs_distances

        for g in small_graphs:
            for source in range(0, g.num_nodes, 2):
                np.testing.assert_array_equal(
                    bfs_distances(g, source), legacy_bfs_distances(g, source)
                )

    def test_distance_matrix_batches_match_single_rows(self, small_graphs):
        for g in small_graphs:
            mat = distance_matrix(g)
            for u in range(g.num_nodes):
                np.testing.assert_array_equal(mat[u], bfs_distances(g, u))


class TestBfsTreeEngine:
    """The vectorized bfs_tree must be bitwise identical to the deque loop."""

    def _portfolio(self):
        graphs = [
            generators.path_graph(17),
            generators.cycle_graph(30),
            generators.grid_graph([7, 9]),
            generators.random_tree(120, seed=2),
            generators.erdos_renyi_graph(150, 0.03, seed=4, connect=False),
            generators.lollipop_graph(8, 40),
        ]
        # Disconnected union: ring + isolated nodes.
        ring = generators.cycle_graph(12)
        graphs.append(
            Graph.from_edges(
                16, [(int(u), int(v)) for u in ring.nodes() for v in ring.neighbors(u) if u < v]
            )
        )
        return graphs

    def test_matches_legacy_on_portfolio(self):
        from repro.graphs.distances import legacy_bfs_tree

        for g in self._portfolio():
            for source in range(0, g.num_nodes, max(1, g.num_nodes // 7)):
                dist_fast, parent_fast = bfs_tree(g, source)
                dist_ref, parent_ref = legacy_bfs_tree(g, source)
                np.testing.assert_array_equal(dist_fast, dist_ref)
                np.testing.assert_array_equal(parent_fast, parent_ref)

    def test_wide_frontier_takes_vectorized_path(self):
        # A star's first frontier has n-1 nodes, well past the sparse cutoff.
        from repro.graphs.distances import legacy_bfs_tree

        g = generators.star_graph(200)
        dist_fast, parent_fast = bfs_tree(g, 0)
        dist_ref, parent_ref = legacy_bfs_tree(g, 0)
        np.testing.assert_array_equal(dist_fast, dist_ref)
        np.testing.assert_array_equal(parent_fast, parent_ref)

    def test_parent_is_closer_neighbor(self):
        g = generators.grid_graph([6, 6])
        dist, parent = bfs_tree(g, 13)
        for v in range(g.num_nodes):
            if v == 13:
                assert parent[v] == v
            else:
                assert parent[v] in g.neighbors(v)
                assert dist[parent[v]] == dist[v] - 1
