"""Byte-budgeted oracle tiers: spill, promotion, exact accounting.

The ``max_bytes=`` budget turns the :class:`DistanceOracle` into a two-tier
cache — dense hot rows, memory-mapped cold rows.  These tests pin the tier
mechanics (spill on budget pressure, promotion on access, counters) and the
invariant the sweep pipeline depends on: *values and hit/miss accounting are
identical to the unbounded oracle* — the budget changes where rows live,
never what a query returns or how it is counted.
"""

import numpy as np
import pytest

from repro.graphs import generators
from repro.graphs.oracle import DistanceOracle


def row_bytes(graph):
    """Bytes of one cached oracle row for *graph*."""
    return DistanceOracle(graph).distances_from(0).nbytes


@pytest.fixture
def cycle():
    return generators.cycle_graph(64)


class TestBudgetValidation:
    def test_max_bytes_must_be_positive(self, cycle):
        with pytest.raises(ValueError):
            DistanceOracle(cycle, max_bytes=0)
        with pytest.raises(ValueError):
            DistanceOracle(cycle, max_bytes=-5)

    def test_none_is_unbounded(self, cycle):
        oracle = DistanceOracle(cycle)
        assert oracle.max_bytes is None
        for s in range(20):
            oracle.distances_from(s)
        assert oracle.cold_spills == 0
        assert oracle.cache_size() == 20


class TestSpillAndPromotion:
    def test_budget_bounds_resident_bytes(self, cycle):
        budget = 3 * row_bytes(cycle)
        oracle = DistanceOracle(cycle, max_bytes=budget)
        for s in range(16):
            oracle.distances_from(s)
        assert oracle.resident_bytes() <= budget
        assert oracle.cold_spills >= 13
        stats = oracle.memory_stats()
        assert stats["cold_entries"] == oracle.cold_spills - oracle.cold_promotions
        assert stats["max_bytes"] == budget

    def test_values_identical_to_unbounded(self, cycle):
        tight = DistanceOracle(cycle, max_bytes=2 * row_bytes(cycle))
        loose = DistanceOracle(cycle)
        for s in list(range(12)) + [3, 0, 7, 11, 2]:
            np.testing.assert_array_equal(
                tight.distances_from(s), loose.distances_from(s)
            )
            np.testing.assert_array_equal(
                tight.next_local_to(s), loose.next_local_to(s)
            )

    def test_cold_hit_is_an_accounted_hit(self, cycle):
        oracle = DistanceOracle(cycle, max_bytes=2 * row_bytes(cycle))
        for s in range(6):
            oracle.distances_from(s)
        assert (oracle.hits, oracle.misses) == (0, 6)
        spilled = oracle.cold_spills
        assert spilled > 0
        # Source 0 was evicted to cold long ago; re-reading it is a *hit*.
        oracle.distances_from(0)
        assert (oracle.hits, oracle.misses) == (1, 6)
        assert oracle.cold_hits == 1
        assert oracle.cold_promotions == 1

    def test_accounting_matches_unbounded_oracle(self, cycle):
        """Same query trace → same hit/miss/preloaded counts, any budget."""
        trace = [0, 1, 2, 3, 4, 0, 2, 5, 1, 6, 6, 0]
        tight = DistanceOracle(cycle, max_bytes=2 * row_bytes(cycle))
        loose = DistanceOracle(cycle)
        for s in trace:
            tight.distances_from(s)
            loose.distances_from(s)
        assert (tight.hits, tight.misses) == (loose.hits, loose.misses)

    def test_prefetch_promotes_silently(self, cycle):
        oracle = DistanceOracle(cycle, max_bytes=2 * row_bytes(cycle))
        for s in range(8):
            oracle.distances_from(s)
        hits, misses = oracle.hits, oracle.misses
        promotions = oracle.cold_promotions
        oracle.prefetch([0, 1, 2])  # all cold or hot: no BFS, no accounting
        assert (oracle.hits, oracle.misses) == (hits, misses)
        assert oracle.cold_promotions > promotions

    def test_next_local_tables_spill_too(self, cycle):
        oracle = DistanceOracle(cycle, max_bytes=2 * row_bytes(cycle))
        tables = {t: oracle.next_local_to(t).copy() for t in range(8)}
        assert oracle.cold_spills > 0
        for t, expected in tables.items():
            np.testing.assert_array_equal(oracle.next_local_to(t), expected)

    def test_routing_blocks_under_budget(self, cycle):
        budget = 8 * row_bytes(cycle) + 4 * 2 * cycle.num_nodes * 8
        oracle = DistanceOracle(cycle, max_bytes=budget)
        loose = DistanceOracle(cycle)
        d1, n1 = oracle.routing_blocks((1, 9, 17, 33))
        d2, n2 = loose.routing_blocks((1, 9, 17, 33))
        np.testing.assert_array_equal(d1, d2)
        np.testing.assert_array_equal(n1, n2)
        assert oracle.resident_bytes() <= budget


class TestExportWithColdTier:
    def test_export_includes_spilled_rows(self, cycle):
        oracle = DistanceOracle(cycle, max_bytes=2 * row_bytes(cycle))
        for s in range(10):
            oracle.distances_from(s)
        state = oracle.export_state()
        assert set(state["dist_sources"].tolist()) == set(range(10))
        fresh = DistanceOracle(cycle)
        fresh.absorb_state(state)
        assert fresh.preloaded == 10
        assert fresh.misses == 0
        reference = DistanceOracle(cycle)
        for s in range(10):
            np.testing.assert_array_equal(
                fresh.distances_from(s), reference.distances_from(s)
            )
        assert fresh.misses == 0  # every row really was preloaded

    def test_clear_resets_tiers_but_keeps_counters(self, cycle):
        oracle = DistanceOracle(cycle, max_bytes=2 * row_bytes(cycle))
        for s in range(8):
            oracle.distances_from(s)
        spills = oracle.cold_spills
        assert spills > 0
        oracle.clear()
        assert oracle.resident_bytes() == 0
        assert oracle.memory_stats()["cold_entries"] == 0
        assert oracle.cold_spills == spills  # counters survive clear()
        np.testing.assert_array_equal(
            oracle.distances_from(3), DistanceOracle(cycle).distances_from(3)
        )


class TestEntryCapUnchanged:
    """max_entries keeps its historical drop-on-evict semantics."""

    def test_entry_evictions_drop_not_spill(self, cycle):
        oracle = DistanceOracle(cycle, max_entries=2)
        for s in range(6):
            oracle.distances_from(s)
        assert oracle.cache_size() == 2
        assert oracle.cold_spills == 0
        assert oracle.memory_stats()["cold_entries"] == 0
        # Dropped row recomputes: a miss, exactly as before the tiers.
        misses = oracle.misses
        oracle.distances_from(0)
        assert oracle.misses == misses + 1
