"""Property tests: the vectorized frontier BFS engine is element-wise
identical to the legacy deque BFS on every graph family we can throw at it.

The engine (``repro.graphs.frontier``) is the hot core every distance,
ball and routing computation now runs on; these tests pin it to the readable
reference implementation (``legacy_bfs_distances``) on random graphs, trees,
grids and disconnected graphs, for single-source, cutoff, multi-source and
batched variants.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import frontier as frontier_module
from repro.graphs import generators
from repro.graphs.distances import (
    UNREACHABLE,
    bfs_distances,
    legacy_bfs_distances,
    multi_source_bfs,
)
from repro.graphs.frontier import (
    bfs_distances_many,
    frontier_bfs,
    frontier_multi_source_bfs,
)
from repro.graphs.graph import Graph

#: Knob settings that force each of the direction-optimizing engine's
#: kernels onto (almost) every level, so the bitwise-equality tests pin all
#: of them individually — not just whichever the heuristics would pick.
KERNEL_CONFIGS = {
    "padded": {"_PAD_SLOT_BLOWUP": 1e9, "_SPARSE_FRONTIER_PADDED": 0, "_BOTTOM_UP_RATIO": 0},
    "csr": {"_PAD_SLOT_BLOWUP": -1.0, "_SPARSE_FRONTIER": 0, "_BOTTOM_UP_RATIO": 0},
    "sparse": {
        "_SPARSE_FRONTIER": 10**9, "_SPARSE_FRONTIER_PADDED": 10**9, "_BOTTOM_UP_RATIO": 0,
    },
    "bottom_up_padded": {
        "_PAD_SLOT_BLOWUP": 1e9, "_BOTTOM_UP_RATIO": 10**9, "_BOTTOM_UP_MIN_SHIFT": 63,
    },
    "bottom_up_csr": {
        "_PAD_SLOT_BLOWUP": -1.0, "_BOTTOM_UP_RATIO": 10**9, "_BOTTOM_UP_MIN_SHIFT": 63,
    },
}


class _forced_kernel:
    """Context manager pinning the engine's per-level choice to one kernel."""

    def __init__(self, name):
        self.overrides = KERNEL_CONFIGS[name]
        self.saved = {}

    def __enter__(self):
        for attr, value in self.overrides.items():
            self.saved[attr] = getattr(frontier_module, attr)
            setattr(frontier_module, attr, value)

    def __exit__(self, *exc):
        for attr, value in self.saved.items():
            setattr(frontier_module, attr, value)


def legacy_multi_source(graph, sources):
    """Reference multi-source BFS: min over per-source legacy BFS arrays."""
    dists = np.stack([legacy_bfs_distances(graph, s) for s in sources])
    masked = np.where(dists == UNREACHABLE, np.iinfo(np.int64).max, dists)
    best = masked.min(axis=0)
    return np.where(best == np.iinfo(np.int64).max, UNREACHABLE, best)


@st.composite
def random_graphs(draw):
    """Random simple graphs, including disconnected ones and isolated nodes."""
    n = draw(st.integers(min_value=1, max_value=40))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=80)) if possible else []
    return Graph.from_edges(n, edges, name=f"hyp-{n}")


def graph_portfolio():
    return [
        generators.path_graph(17),
        generators.cycle_graph(24),
        generators.grid_graph([5, 7]),
        generators.grid_graph([3, 4, 5]),
        generators.binary_tree(31),
        generators.random_tree(64, seed=11),
        generators.star_graph(20),
        generators.erdos_renyi_graph(80, 0.05, seed=5, connect=False),
        generators.erdos_renyi_graph(60, 0.02, seed=9, connect=False),
        Graph.from_edges(9, [(0, 1), (1, 2), (4, 5), (5, 6), (6, 4)], name="three-components"),
        Graph.empty(6),
    ]


class TestSingleSourceEquivalence:
    @pytest.mark.parametrize("graph", graph_portfolio(), ids=lambda g: g.name)
    def test_matches_legacy_on_portfolio(self, graph):
        for source in range(graph.num_nodes):
            expected = legacy_bfs_distances(graph, source)
            np.testing.assert_array_equal(frontier_bfs(graph, source), expected)

    @pytest.mark.parametrize("graph", graph_portfolio(), ids=lambda g: g.name)
    def test_cutoff_matches_legacy(self, graph):
        for source in range(0, graph.num_nodes, 2):
            for cutoff in (0, 1, 2, 5):
                expected = legacy_bfs_distances(graph, source, cutoff=cutoff)
                got = frontier_bfs(graph, source, cutoff=cutoff)
                np.testing.assert_array_equal(got, expected)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data(), graph=random_graphs())
    def test_random_graphs_property(self, data, graph):
        source = data.draw(st.integers(0, graph.num_nodes - 1))
        cutoff = data.draw(st.one_of(st.none(), st.integers(0, 8)))
        expected = legacy_bfs_distances(graph, source, cutoff=cutoff)
        np.testing.assert_array_equal(frontier_bfs(graph, source, cutoff=cutoff), expected)

    def test_negative_cutoff_rejected(self):
        with pytest.raises(ValueError):
            frontier_bfs(generators.path_graph(4), 0, cutoff=-1)

    def test_bad_source_rejected(self):
        with pytest.raises((IndexError, ValueError)):
            frontier_bfs(generators.path_graph(4), 99)


class TestMultiSourceEquivalence:
    @pytest.mark.parametrize("graph", graph_portfolio(), ids=lambda g: g.name)
    def test_matches_per_source_minimum(self, graph):
        if graph.num_nodes < 3:
            pytest.skip("needs at least three nodes")
        sources = [0, graph.num_nodes // 2, graph.num_nodes - 1]
        expected = legacy_multi_source(graph, sources)
        np.testing.assert_array_equal(frontier_multi_source_bfs(graph, sources), expected)
        np.testing.assert_array_equal(multi_source_bfs(graph, sources), expected)

    def test_no_sources_all_unreachable(self):
        g = generators.path_graph(5)
        assert np.all(frontier_multi_source_bfs(g, []) == UNREACHABLE)

    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), graph=random_graphs())
    def test_random_graphs_property(self, data, graph):
        sources = data.draw(
            st.lists(st.integers(0, graph.num_nodes - 1), min_size=1, max_size=5)
        )
        expected = legacy_multi_source(graph, sources)
        np.testing.assert_array_equal(frontier_multi_source_bfs(graph, sources), expected)


class TestBatchedEquivalence:
    @pytest.mark.parametrize("graph", graph_portfolio(), ids=lambda g: g.name)
    def test_each_row_matches_legacy(self, graph):
        sources = list(range(graph.num_nodes))
        block = bfs_distances_many(graph, sources)
        assert block.shape == (graph.num_nodes, graph.num_nodes)
        for row, source in enumerate(sources):
            np.testing.assert_array_equal(block[row], legacy_bfs_distances(graph, source))

    @pytest.mark.parametrize("graph", graph_portfolio(), ids=lambda g: g.name)
    def test_cutoff_rows_match_legacy(self, graph):
        sources = list(range(0, graph.num_nodes, 2))
        if not sources:
            pytest.skip("empty graph")
        block = bfs_distances_many(graph, sources, cutoff=3)
        for row, source in enumerate(sources):
            np.testing.assert_array_equal(
                block[row], legacy_bfs_distances(graph, source, cutoff=3)
            )

    def test_duplicate_sources_are_independent_rows(self):
        g = generators.grid_graph([4, 5])
        block = bfs_distances_many(g, [3, 3, 7])
        np.testing.assert_array_equal(block[0], block[1])
        np.testing.assert_array_equal(block[0], legacy_bfs_distances(g, 3))
        np.testing.assert_array_equal(block[2], legacy_bfs_distances(g, 7))

    def test_empty_batch(self):
        g = generators.path_graph(4)
        block = bfs_distances_many(g, [])
        assert block.shape == (0, 4)

    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), graph=random_graphs())
    def test_random_graphs_property(self, data, graph):
        sources = data.draw(
            st.lists(st.integers(0, graph.num_nodes - 1), min_size=1, max_size=6)
        )
        cutoff = data.draw(st.one_of(st.none(), st.integers(0, 6)))
        block = bfs_distances_many(graph, sources, cutoff=cutoff)
        for row, source in enumerate(sources):
            np.testing.assert_array_equal(
                block[row], legacy_bfs_distances(graph, source, cutoff=cutoff)
            )


class TestDirectionOptimizedKernels:
    """Every kernel of the per-level switch is bitwise-equal to the legacy BFS.

    The engine picks top-down (sparse scalar / padded lean / CSR gather) or
    bottom-up per level; distances are intra-level order-independent, so all
    kernels must produce identical arrays.  These tests force each kernel via
    the module knobs and pin it to ``legacy_bfs_distances`` across the whole
    graph portfolio, including cutoff truncation and duplicate batched
    sources.  The padded-adjacency memo is cleared per configuration so a
    table built under one knob setting never leaks into another.
    """

    @pytest.mark.parametrize("kernel", sorted(KERNEL_CONFIGS))
    @pytest.mark.parametrize("graph", graph_portfolio(), ids=lambda g: g.name)
    def test_batched_rows_match_legacy(self, kernel, graph):
        sources = list(range(graph.num_nodes)) + [0, graph.num_nodes - 1] if graph.num_nodes else []
        if not sources:
            return
        graph.derived_cache().clear()
        with _forced_kernel(kernel):
            block = bfs_distances_many(graph, sources)
        for row, source in enumerate(sources):
            np.testing.assert_array_equal(block[row], legacy_bfs_distances(graph, source))

    @pytest.mark.parametrize("kernel", sorted(KERNEL_CONFIGS))
    @pytest.mark.parametrize("graph", graph_portfolio(), ids=lambda g: g.name)
    def test_cutoff_matches_legacy(self, kernel, graph):
        sources = list(range(0, graph.num_nodes, 3))
        if not sources:
            return
        for cutoff in (0, 1, 2, 4):
            graph.derived_cache().clear()
            with _forced_kernel(kernel):
                block = bfs_distances_many(graph, sources, cutoff=cutoff)
            for row, source in enumerate(sources):
                np.testing.assert_array_equal(
                    block[row], legacy_bfs_distances(graph, source, cutoff=cutoff)
                )

    @pytest.mark.parametrize("kernel", sorted(KERNEL_CONFIGS))
    def test_high_diameter_batched(self, kernel):
        for graph in (generators.cycle_graph(300), generators.path_graph(301)):
            sources = list(range(0, graph.num_nodes, 37))
            graph.derived_cache().clear()
            with _forced_kernel(kernel):
                block = bfs_distances_many(graph, sources)
            for row, source in enumerate(sources):
                np.testing.assert_array_equal(block[row], legacy_bfs_distances(graph, source))

    @pytest.mark.parametrize("kernel", sorted(KERNEL_CONFIGS))
    def test_multi_source_matches_reference(self, kernel):
        for graph in graph_portfolio():
            if graph.num_nodes < 3:
                continue
            sources = [0, graph.num_nodes // 2, graph.num_nodes - 1]
            graph.derived_cache().clear()
            with _forced_kernel(kernel):
                got = frontier_multi_source_bfs(graph, sources)
            np.testing.assert_array_equal(got, legacy_multi_source(graph, sources))

    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), graph=random_graphs())
    def test_random_graphs_all_kernels_property(self, data, graph):
        kernel = data.draw(st.sampled_from(sorted(KERNEL_CONFIGS)))
        sources = data.draw(
            st.lists(st.integers(0, graph.num_nodes - 1), min_size=1, max_size=6)
        )
        cutoff = data.draw(st.one_of(st.none(), st.integers(0, 6)))
        graph.derived_cache().clear()
        with _forced_kernel(kernel):
            block = bfs_distances_many(graph, sources, cutoff=cutoff)
        for row, source in enumerate(sources):
            np.testing.assert_array_equal(
                block[row], legacy_bfs_distances(graph, source, cutoff=cutoff)
            )

    def test_duplicate_sources_under_forced_bottom_up(self):
        graph = generators.grid_graph([5, 6])
        with _forced_kernel("bottom_up_padded"):
            block = bfs_distances_many(graph, [3, 3, 17, 3])
        np.testing.assert_array_equal(block[0], block[1])
        np.testing.assert_array_equal(block[0], block[3])
        np.testing.assert_array_equal(block[0], legacy_bfs_distances(graph, 3))
        np.testing.assert_array_equal(block[2], legacy_bfs_distances(graph, 17))

    def test_heuristic_choice_equals_forced_reference(self):
        # Whatever mix of kernels the real heuristics pick, the output must
        # equal the pure-CSR reference (the pre-direction-optimizing engine).
        for graph in (
            generators.cycle_graph(400),
            generators.erdos_renyi_graph(300, 0.02, seed=7, connect=False),
            generators.grid_graph([12, 13]),
        ):
            sources = list(range(0, graph.num_nodes, 11))
            auto = bfs_distances_many(graph, sources)
            graph.derived_cache().clear()
            with _forced_kernel("csr"):
                reference = bfs_distances_many(graph, sources)
            np.testing.assert_array_equal(auto, reference)

    def test_padded_adjacency_memoised_and_unpickled_lazily(self):
        import pickle

        graph = generators.cycle_graph(64)
        bfs_distances_many(graph, [0, 5])  # builds + memoises the pad
        assert frontier_module._PAD_CACHE_KEY in graph.derived_cache()
        clone = pickle.loads(pickle.dumps(graph))
        # The derived cache is scratch state, not value: it must not travel.
        assert clone.derived_cache() == {}
        np.testing.assert_array_equal(
            bfs_distances_many(clone, [0, 5]), bfs_distances_many(graph, [0, 5])
        )

    def test_hub_graph_rejects_padding(self):
        graph = generators.star_graph(400)
        graph.derived_cache().clear()
        np.testing.assert_array_equal(
            frontier_bfs(graph, 3), legacy_bfs_distances(graph, 3)
        )
        assert graph.derived_cache()[frontier_module._PAD_CACHE_KEY] is None


class TestPublicWrappers:
    def test_bfs_distances_is_frontier_backed(self):
        g = generators.grid_graph([6, 6])
        np.testing.assert_array_equal(bfs_distances(g, 0), frontier_bfs(g, 0))

    def test_sparse_and_vector_paths_agree(self):
        # A star's frontier jumps 1 -> n-1, crossing the sparse/vector switch
        # both ways on consecutive levels.
        g = generators.star_graph(200)
        for source in (0, 1, 150):
            np.testing.assert_array_equal(
                frontier_bfs(g, source), legacy_bfs_distances(g, source)
            )


class _forced_int64:
    """Context manager pinning the engine's state dtype to the int64 path."""

    def __enter__(self):
        self.saved = frontier_module._FORCE_INT64
        frontier_module._FORCE_INT64 = True

    def __exit__(self, *exc):
        frontier_module._FORCE_INT64 = self.saved


class TestDtypeParity:
    """int32 state (the default below 2**31 keys) is bitwise-identical to the
    int64 reference path, per kernel, across the whole portfolio."""

    def test_bfs_dtype_selection(self):
        assert frontier_module.bfs_dtype(10**6) == np.dtype(np.int32)
        assert frontier_module.bfs_dtype(np.iinfo(np.int32).max) == np.dtype(np.int32)
        assert frontier_module.bfs_dtype(np.iinfo(np.int32).max + 1) == np.dtype(np.int64)
        with _forced_int64():
            assert frontier_module.bfs_dtype(8) == np.dtype(np.int64)

    @pytest.mark.parametrize("kernel", sorted(KERNEL_CONFIGS))
    def test_kernel_values_match_int64_reference(self, kernel):
        for graph in graph_portfolio():
            if graph.num_nodes == 0:
                continue
            sources = [0, graph.num_nodes // 2, graph.num_nodes - 1]
            graph.derived_cache().clear()
            with _forced_kernel(kernel):
                narrow = bfs_distances_many(graph, sources)
                graph.derived_cache().clear()
                with _forced_int64():
                    wide = bfs_distances_many(graph, sources)
            assert narrow.dtype == np.dtype(np.int32), graph.name
            assert wide.dtype == np.dtype(np.int64), graph.name
            np.testing.assert_array_equal(narrow, wide, err_msg=graph.name)

    def test_tree_parents_match_int64_reference(self):
        from repro.graphs.frontier import frontier_bfs_tree

        for graph in graph_portfolio():
            if graph.num_nodes == 0:
                continue
            dist32, parent32 = frontier_bfs_tree(graph, 0)
            with _forced_int64():
                dist64, parent64 = frontier_bfs_tree(graph, 0)
            assert dist32.dtype == np.dtype(np.int32)
            assert dist64.dtype == np.dtype(np.int64)
            np.testing.assert_array_equal(dist32, dist64, err_msg=graph.name)
            np.testing.assert_array_equal(parent32, parent64, err_msg=graph.name)

    def test_cutoff_and_multi_source_parity(self):
        graph = generators.grid_graph([9, 9])
        for cutoff in (0, 1, 3):
            narrow = frontier_bfs(graph, 0, cutoff=cutoff)
            with _forced_int64():
                wide = frontier_bfs(graph, 0, cutoff=cutoff)
            np.testing.assert_array_equal(narrow, wide)
        narrow = frontier_multi_source_bfs(graph, [0, 40, 80])
        with _forced_int64():
            wide = frontier_multi_source_bfs(graph, [0, 40, 80])
        np.testing.assert_array_equal(narrow, wide)
