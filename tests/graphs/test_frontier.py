"""Property tests: the vectorized frontier BFS engine is element-wise
identical to the legacy deque BFS on every graph family we can throw at it.

The engine (``repro.graphs.frontier``) is the hot core every distance,
ball and routing computation now runs on; these tests pin it to the readable
reference implementation (``legacy_bfs_distances``) on random graphs, trees,
grids and disconnected graphs, for single-source, cutoff, multi-source and
batched variants.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import generators
from repro.graphs.distances import (
    UNREACHABLE,
    bfs_distances,
    legacy_bfs_distances,
    multi_source_bfs,
)
from repro.graphs.frontier import (
    bfs_distances_many,
    frontier_bfs,
    frontier_multi_source_bfs,
)
from repro.graphs.graph import Graph


def legacy_multi_source(graph, sources):
    """Reference multi-source BFS: min over per-source legacy BFS arrays."""
    dists = np.stack([legacy_bfs_distances(graph, s) for s in sources])
    masked = np.where(dists == UNREACHABLE, np.iinfo(np.int64).max, dists)
    best = masked.min(axis=0)
    return np.where(best == np.iinfo(np.int64).max, UNREACHABLE, best)


@st.composite
def random_graphs(draw):
    """Random simple graphs, including disconnected ones and isolated nodes."""
    n = draw(st.integers(min_value=1, max_value=40))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=80)) if possible else []
    return Graph.from_edges(n, edges, name=f"hyp-{n}")


def graph_portfolio():
    return [
        generators.path_graph(17),
        generators.cycle_graph(24),
        generators.grid_graph([5, 7]),
        generators.grid_graph([3, 4, 5]),
        generators.binary_tree(31),
        generators.random_tree(64, seed=11),
        generators.star_graph(20),
        generators.erdos_renyi_graph(80, 0.05, seed=5, connect=False),
        generators.erdos_renyi_graph(60, 0.02, seed=9, connect=False),
        Graph.from_edges(9, [(0, 1), (1, 2), (4, 5), (5, 6), (6, 4)], name="three-components"),
        Graph.empty(6),
    ]


class TestSingleSourceEquivalence:
    @pytest.mark.parametrize("graph", graph_portfolio(), ids=lambda g: g.name)
    def test_matches_legacy_on_portfolio(self, graph):
        for source in range(graph.num_nodes):
            expected = legacy_bfs_distances(graph, source)
            np.testing.assert_array_equal(frontier_bfs(graph, source), expected)

    @pytest.mark.parametrize("graph", graph_portfolio(), ids=lambda g: g.name)
    def test_cutoff_matches_legacy(self, graph):
        for source in range(0, graph.num_nodes, 2):
            for cutoff in (0, 1, 2, 5):
                expected = legacy_bfs_distances(graph, source, cutoff=cutoff)
                got = frontier_bfs(graph, source, cutoff=cutoff)
                np.testing.assert_array_equal(got, expected)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data(), graph=random_graphs())
    def test_random_graphs_property(self, data, graph):
        source = data.draw(st.integers(0, graph.num_nodes - 1))
        cutoff = data.draw(st.one_of(st.none(), st.integers(0, 8)))
        expected = legacy_bfs_distances(graph, source, cutoff=cutoff)
        np.testing.assert_array_equal(frontier_bfs(graph, source, cutoff=cutoff), expected)

    def test_negative_cutoff_rejected(self):
        with pytest.raises(ValueError):
            frontier_bfs(generators.path_graph(4), 0, cutoff=-1)

    def test_bad_source_rejected(self):
        with pytest.raises((IndexError, ValueError)):
            frontier_bfs(generators.path_graph(4), 99)


class TestMultiSourceEquivalence:
    @pytest.mark.parametrize("graph", graph_portfolio(), ids=lambda g: g.name)
    def test_matches_per_source_minimum(self, graph):
        if graph.num_nodes < 3:
            pytest.skip("needs at least three nodes")
        sources = [0, graph.num_nodes // 2, graph.num_nodes - 1]
        expected = legacy_multi_source(graph, sources)
        np.testing.assert_array_equal(frontier_multi_source_bfs(graph, sources), expected)
        np.testing.assert_array_equal(multi_source_bfs(graph, sources), expected)

    def test_no_sources_all_unreachable(self):
        g = generators.path_graph(5)
        assert np.all(frontier_multi_source_bfs(g, []) == UNREACHABLE)

    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), graph=random_graphs())
    def test_random_graphs_property(self, data, graph):
        sources = data.draw(
            st.lists(st.integers(0, graph.num_nodes - 1), min_size=1, max_size=5)
        )
        expected = legacy_multi_source(graph, sources)
        np.testing.assert_array_equal(frontier_multi_source_bfs(graph, sources), expected)


class TestBatchedEquivalence:
    @pytest.mark.parametrize("graph", graph_portfolio(), ids=lambda g: g.name)
    def test_each_row_matches_legacy(self, graph):
        sources = list(range(graph.num_nodes))
        block = bfs_distances_many(graph, sources)
        assert block.shape == (graph.num_nodes, graph.num_nodes)
        for row, source in enumerate(sources):
            np.testing.assert_array_equal(block[row], legacy_bfs_distances(graph, source))

    @pytest.mark.parametrize("graph", graph_portfolio(), ids=lambda g: g.name)
    def test_cutoff_rows_match_legacy(self, graph):
        sources = list(range(0, graph.num_nodes, 2))
        if not sources:
            pytest.skip("empty graph")
        block = bfs_distances_many(graph, sources, cutoff=3)
        for row, source in enumerate(sources):
            np.testing.assert_array_equal(
                block[row], legacy_bfs_distances(graph, source, cutoff=3)
            )

    def test_duplicate_sources_are_independent_rows(self):
        g = generators.grid_graph([4, 5])
        block = bfs_distances_many(g, [3, 3, 7])
        np.testing.assert_array_equal(block[0], block[1])
        np.testing.assert_array_equal(block[0], legacy_bfs_distances(g, 3))
        np.testing.assert_array_equal(block[2], legacy_bfs_distances(g, 7))

    def test_empty_batch(self):
        g = generators.path_graph(4)
        block = bfs_distances_many(g, [])
        assert block.shape == (0, 4)

    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), graph=random_graphs())
    def test_random_graphs_property(self, data, graph):
        sources = data.draw(
            st.lists(st.integers(0, graph.num_nodes - 1), min_size=1, max_size=6)
        )
        cutoff = data.draw(st.one_of(st.none(), st.integers(0, 6)))
        block = bfs_distances_many(graph, sources, cutoff=cutoff)
        for row, source in enumerate(sources):
            np.testing.assert_array_equal(
                block[row], legacy_bfs_distances(graph, source, cutoff=cutoff)
            )


class TestPublicWrappers:
    def test_bfs_distances_is_frontier_backed(self):
        g = generators.grid_graph([6, 6])
        np.testing.assert_array_equal(bfs_distances(g, 0), frontier_bfs(g, 0))

    def test_sparse_and_vector_paths_agree(self):
        # A star's frontier jumps 1 -> n-1, crossing the sparse/vector switch
        # both ways on consecutive levels.
        g = generators.star_graph(200)
        for source in (0, 1, 150):
            np.testing.assert_array_equal(
                frontier_bfs(g, source), legacy_bfs_distances(g, source)
            )
