"""Lease files and ``shard`` mode: an artifact directory as a work queue.

Covers the lease primitive (atomic acquire, contention, release, refresh,
stale-lease takeover) and the drain loop built on it: two real OS processes
racing one artifact directory compute disjoint cell sets whose union is the
full sweep, and every shard assembles a report bitwise-identical to a serial
run.
"""

import json
import multiprocessing
import os
import threading
import time

import pytest

from repro.analysis.reporting import CellArtifact, artifact_path, write_cell_artifact
from repro.experiments import exp_uniform, lease
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import SweepExecutor, render_markdown, run_all

TINY = ExperimentConfig(sizes=[48, 96], num_pairs=3, trials=3, seed=7)


class TestLeasePrimitive:
    def test_acquire_then_contend(self, tmp_path):
        artifact = tmp_path / "cell.json"
        assert lease.try_acquire(artifact) is True
        assert lease.lease_path(artifact).is_file()
        # Second contender loses while the lease is fresh.
        assert lease.try_acquire(artifact) is False

    def test_release_reopens_the_cell(self, tmp_path):
        artifact = tmp_path / "cell.json"
        assert lease.try_acquire(artifact)
        lease.release(artifact)
        assert not lease.lease_path(artifact).exists()
        assert lease.try_acquire(artifact) is True

    def test_release_is_idempotent(self, tmp_path):
        artifact = tmp_path / "cell.json"
        lease.release(artifact)  # never acquired: no error
        assert lease.try_acquire(artifact)
        lease.release(artifact)
        lease.release(artifact)

    def test_payload_names_the_owner(self, tmp_path):
        artifact = tmp_path / "cell.json"
        assert lease.try_acquire(artifact, owner="worker-7")
        payload = json.loads(lease.lease_path(artifact).read_text())
        assert payload["owner"] == "worker-7"
        assert payload["pid"] == os.getpid()

    def test_stale_lease_taken_over(self, tmp_path):
        artifact = tmp_path / "cell.json"
        assert lease.try_acquire(artifact, owner="dead-worker")
        path = lease.lease_path(artifact)
        old = time.time() - 1000.0
        os.utime(path, (old, old))
        assert lease.try_acquire(artifact, ttl=300.0, owner="live-worker") is True
        payload = json.loads(path.read_text())
        assert payload["owner"] == "live-worker"

    def test_refresh_prevents_takeover(self, tmp_path):
        artifact = tmp_path / "cell.json"
        assert lease.try_acquire(artifact)
        path = lease.lease_path(artifact)
        old = time.time() - 1000.0
        os.utime(path, (old, old))
        lease.refresh(artifact)  # the holder touches its lease in time
        assert lease.try_acquire(artifact, ttl=300.0) is False

    def test_fresh_lease_not_taken_over(self, tmp_path):
        artifact = tmp_path / "cell.json"
        assert lease.try_acquire(artifact)
        assert lease.try_acquire(artifact, ttl=0.5) is False


class TestShardValidation:
    def test_shard_requires_artifacts_dir(self):
        with pytest.raises(ValueError, match="artifacts_dir"):
            SweepExecutor(TINY, shard=True)

    def test_shard_rejects_jobs(self, tmp_path):
        with pytest.raises(ValueError, match="shard"):
            SweepExecutor(TINY, shard=True, jobs=2, artifacts_dir=tmp_path)


def _drain_worker(artifacts_dir, out_json):
    """One shard process: drain the directory, dump what it did."""
    stats = {}
    results = run_all(
        TINY,
        only=["EXP-1"],
        artifacts_dir=artifacts_dir,
        shard=True,
        stats=stats,
    )
    out = {
        "executed": sorted(
            (c.experiment_id, c.family, c.n) for c in stats["executed"]
        ),
        "skipped": sorted(
            (c.experiment_id, c.family, c.n) for c in stats["skipped"]
        ),
        "markdown": render_markdown(results),
    }
    with open(out_json, "w", encoding="utf-8") as handle:
        json.dump(out, handle)


class TestShardedDrain:
    def test_single_shard_matches_serial(self, tmp_path):
        serial = run_all(TINY, only=["EXP-1"])
        stats = {}
        sharded = run_all(
            TINY,
            only=["EXP-1"],
            artifacts_dir=tmp_path / "artifacts",
            shard=True,
            stats=stats,
        )
        assert render_markdown(sharded) == render_markdown(serial)
        assert stats["skipped"] == []
        # No leases left behind.
        assert list((tmp_path / "artifacts").glob("*.lease")) == []

    def test_shard_resumes_finished_cells(self, tmp_path):
        artifacts = tmp_path / "artifacts"
        run_all(TINY, only=["EXP-1"], artifacts_dir=artifacts)
        stats = {}
        run_all(TINY, only=["EXP-1"], artifacts_dir=artifacts, shard=True, stats=stats)
        assert stats["executed"] == []
        assert len(stats["skipped"]) > 0

    def test_two_processes_race_one_directory(self, tmp_path):
        artifacts = tmp_path / "artifacts"
        artifacts.mkdir()
        outs = [tmp_path / "w0.json", tmp_path / "w1.json"]
        procs = [
            multiprocessing.Process(
                target=_drain_worker, args=(str(artifacts), str(out))
            )
            for out in outs
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=300)
            assert proc.exitcode == 0
        reports = [json.loads(out.read_text()) for out in outs]

        serial = run_all(TINY, only=["EXP-1"], stats=(serial_stats := {}))
        all_cells = sorted(
            (c.experiment_id, c.family, c.n) for c in serial_stats["executed"]
        )
        executed = [set(map(tuple, r["executed"])) for r in reports]
        # Leases kept the computed sets disjoint, and together the two
        # shards (compute + artifact-load) covered the whole sweep.
        assert executed[0] & executed[1] == set()
        for report in reports:
            covered = set(map(tuple, report["executed"])) | set(
                map(tuple, report["skipped"])
            )
            assert covered == set(all_cells)
        assert executed[0] | executed[1] == set(all_cells)
        # Every shard assembled the identical full report.
        expected = render_markdown(serial)
        for report in reports:
            assert report["markdown"] == expected
        assert list(artifacts.glob("*.lease")) == []

    def test_stale_takeover_unwedges_a_crashed_shard(self, tmp_path):
        artifacts = tmp_path / "artifacts"
        artifacts.mkdir()
        # A "crashed" worker left a lease on one cell and never finished it.
        first = artifact_path(artifacts, "EXP-1", "ring", 48)
        assert lease.try_acquire(first, owner="crashed")
        path = lease.lease_path(first)
        old = time.time() - 1000.0
        os.utime(path, (old, old))
        stats = {}
        results = run_all(
            TINY,
            only=["EXP-1"],
            artifacts_dir=artifacts,
            shard=True,
            lease_ttl=300.0,
            stats=stats,
        )
        done = {(c.experiment_id, c.family, c.n) for c in stats["executed"]}
        assert ("EXP-1", "ring", 48) in done
        assert render_markdown(results) == render_markdown(run_all(TINY, only=["EXP-1"]))

    def test_live_lease_defers_until_artifact_appears(self, tmp_path):
        artifacts = tmp_path / "artifacts"
        artifacts.mkdir()
        held = artifact_path(artifacts, "EXP-1", "ring", 48)
        assert lease.try_acquire(held, owner="other-shard")

        def finish_elsewhere():
            # Simulate the lease holder: compute just this cell, persist it
            # under the shared fingerprint, then release the lease.
            payload = exp_uniform.run_cell(TINY, "ring", 48)
            write_cell_artifact(
                artifacts,
                CellArtifact(
                    experiment_id="EXP-1",
                    family="ring",
                    n=48,
                    config=TINY.fingerprint(),
                    payload=payload,
                ),
            )
            lease.release(held)

        helper = threading.Thread(target=finish_elsewhere)
        helper.start()
        try:
            stats = {}
            run_all(
                TINY,
                only=["EXP-1"],
                artifacts_dir=artifacts,
                shard=True,
                stats=stats,
            )
        finally:
            helper.join(timeout=120)
        done = {(c.experiment_id, c.family, c.n) for c in stats["executed"]}
        # This shard never computed the held cell: it arrived as an artifact.
        assert ("EXP-1", "ring", 48) not in done
        skipped = {(c.experiment_id, c.family, c.n) for c in stats["skipped"]}
        assert ("EXP-1", "ring", 48) in skipped
