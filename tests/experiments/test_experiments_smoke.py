"""Smoke + structure tests for every experiment module (tiny configurations).

These are integration tests of the whole stack: generators → decompositions →
schemes → routing → analysis → reporting.  The configurations are tiny so the
whole file runs in seconds; the statistical claims themselves are checked at
full size by the benchmark harness and recorded in EXPERIMENTS.md.
"""

import pytest

from repro.experiments import (
    exp_ball_ablation,
    exp_ball_scheme,
    exp_kleinberg,
    exp_label_size,
    exp_matrix_label,
    exp_name_independent,
    exp_trees_atfree,
    exp_uniform,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import EXPERIMENT_MODULES, render_markdown, run_all

TINY = ExperimentConfig(sizes=[64, 128], num_pairs=3, trials=3, seed=7)

ALL_MODULES = [
    exp_uniform,
    exp_name_independent,
    exp_matrix_label,
    exp_trees_atfree,
    exp_label_size,
    exp_ball_scheme,
    exp_kleinberg,
    exp_ball_ablation,
]


class TestModuleContracts:
    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.EXPERIMENT_ID)
    def test_metadata_present(self, module):
        assert module.EXPERIMENT_ID.startswith("EXP-")
        assert module.TITLE
        assert module.PAPER_CLAIM

    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.EXPERIMENT_ID)
    def test_run_produces_result(self, module):
        result = module.run(TINY)
        assert result.experiment_id == module.EXPERIMENT_ID
        assert result.series, "experiment produced no series"
        for series in result.series:
            assert len(series.sizes) == len(series.values)
            assert all(v >= 0 for v in series.values)
        assert result.conclusion
        # Text and markdown renderings must not crash and must mention the id.
        assert module.EXPERIMENT_ID in result.to_text()
        assert module.EXPERIMENT_ID in result.to_markdown()

    def test_experiment_ids_unique_and_ordered(self):
        ids = [m.EXPERIMENT_ID for m in EXPERIMENT_MODULES]
        assert len(ids) == len(set(ids))
        assert ids == sorted(ids, key=lambda x: int(x.split("-")[1]))


class TestRunner:
    def test_run_all_with_selection(self):
        results = run_all(TINY, only=["EXP-1", "EXP-6"])
        assert set(results) == {"EXP-1", "EXP-6"}

    def test_render_markdown_concatenates(self):
        results = run_all(TINY, only=["EXP-1"])
        md = render_markdown(results)
        assert md.startswith("### EXP-1")
