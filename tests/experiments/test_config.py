"""Unit tests for ExperimentConfig."""

from repro.experiments.config import ExperimentConfig


class TestExperimentConfig:
    def test_defaults(self):
        cfg = ExperimentConfig()
        assert cfg.sizes[-1] == 4096
        assert cfg.trials > 0

    def test_effective_sizes_with_cap(self):
        cfg = ExperimentConfig(sizes=[128, 256, 512], max_size=256)
        assert cfg.effective_sizes() == [128, 256]

    def test_effective_sizes_cap_below_minimum(self):
        cfg = ExperimentConfig(sizes=[128, 256], max_size=64)
        assert cfg.effective_sizes() == [128]

    def test_scaled_copy(self):
        cfg = ExperimentConfig().scaled(trials=3)
        assert cfg.trials == 3
        assert cfg.sizes == ExperimentConfig().sizes

    def test_quick_is_smaller_than_full(self):
        quick, full = ExperimentConfig.quick(), ExperimentConfig.full()
        assert max(quick.sizes) < max(full.sizes)
        assert quick.trials <= full.trials

    def test_fingerprint_roundtrips(self):
        cfg = ExperimentConfig(sizes=[64, 128], num_pairs=3, trials=5, seed=9)
        fp = cfg.fingerprint()
        assert ExperimentConfig(**fp) == cfg
        assert fp == cfg.fingerprint()

    def test_fingerprint_distinguishes_configs(self):
        cfg = ExperimentConfig()
        assert cfg.fingerprint() != cfg.scaled(trials=cfg.trials + 1).fingerprint()

    def test_engine_default_and_fingerprint(self):
        cfg = ExperimentConfig()
        assert cfg.engine == "lane"
        assert cfg.fingerprint()["engine"] == "lane"
        # The engines draw different random streams, so swapping one must
        # invalidate --resume artifacts via the fingerprint.
        assert cfg.fingerprint() != cfg.scaled(engine="scalar").fingerprint()
