"""Unit tests for ExperimentConfig."""

from repro.experiments.config import ExperimentConfig


class TestExperimentConfig:
    def test_defaults(self):
        cfg = ExperimentConfig()
        assert cfg.sizes[-1] == 4096
        assert cfg.trials > 0

    def test_effective_sizes_with_cap(self):
        cfg = ExperimentConfig(sizes=[128, 256, 512], max_size=256)
        assert cfg.effective_sizes() == [128, 256]

    def test_effective_sizes_cap_below_minimum(self):
        cfg = ExperimentConfig(sizes=[128, 256], max_size=64)
        assert cfg.effective_sizes() == [128]

    def test_scaled_copy(self):
        cfg = ExperimentConfig().scaled(trials=3)
        assert cfg.trials == 3
        assert cfg.sizes == ExperimentConfig().sizes

    def test_quick_is_smaller_than_full(self):
        quick, full = ExperimentConfig.quick(), ExperimentConfig.full()
        assert max(quick.sizes) < max(full.sizes)
        assert quick.trials <= full.trials
