"""Tests for the oracle-backed sweep pipeline.

Covers the ISSUE-2 acceptance criteria: ``only=`` filtering raises on unknown
ids, schemes within a cell share one BFS oracle (counting-oracle test),
artifacts round-trip, ``resume`` executes zero cells while reproducing
identical markdown, and process fan-out matches the serial sweep.
"""

import pytest

from repro.analysis.reporting import CellArtifact, load_cell_artifact
from repro.core.ball_scheme import BallScheme
from repro.core.uniform import UniformScheme
from repro.experiments import exp_ball_scheme, exp_uniform
from repro.experiments.common import (
    SweepCache,
    derive_cell_seed,
    derive_instance_seed,
    measure_scaling,
    route_point,
    standard_graph_families,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    EXPERIMENT_MODULES,
    SweepExecutor,
    render_markdown,
    results_from_artifacts,
    run_all,
    select_modules,
)
from repro.graphs import generators
from repro.graphs.oracle import DistanceOracle

TINY = ExperimentConfig(sizes=[48, 96], num_pairs=3, trials=3, seed=7)


class _RecordingFactory:
    """Oracle factory that keeps every oracle it built (for hit/miss counting)."""

    def __init__(self):
        self.oracles = []

    def __call__(self, graph):
        oracle = DistanceOracle(graph)
        self.oracles.append(oracle)
        return oracle

    @property
    def total_misses(self):
        return sum(o.misses for o in self.oracles)

    @property
    def total_hits(self):
        return sum(o.hits for o in self.oracles)


class TestOnlyFiltering:
    def test_unknown_id_raises_with_available_ids(self):
        with pytest.raises(ValueError) as excinfo:
            run_all(TINY, only=["EXP-99"])
        message = str(excinfo.value)
        assert "EXP-99" in message
        for module in EXPERIMENT_MODULES:
            assert module.EXPERIMENT_ID in message

    def test_mixed_known_and_unknown_raises(self):
        with pytest.raises(ValueError):
            select_modules(["EXP-1", "EXP-0"])

    def test_selection_is_case_insensitive_and_ordered(self):
        modules = select_modules(["exp-6", "EXP-1"])
        assert [m.EXPERIMENT_ID for m in modules] == ["EXP-1", "EXP-6"]

    def test_none_selects_everything(self):
        assert select_modules(None) == list(EXPERIMENT_MODULES)

    def test_empty_filter_selects_everything(self):
        # argparse nargs="*" yields [] when --only is given with no values;
        # that must mean "run everything", never a silent empty sweep.
        assert select_modules([]) == list(EXPERIMENT_MODULES)


class TestOracleReuse:
    def test_one_oracle_per_cell_and_cache_hits(self):
        factory = _RecordingFactory()
        exp_ball_scheme.run_cell(TINY, "ring", 96, oracle_factory=factory)
        assert len(factory.oracles) == 1
        assert factory.oracles[0].hits > 0

    def test_shared_oracle_needs_fewer_bfs_than_private_oracles(self):
        """The acceptance check: a cell's shared oracle performs measurably
        fewer BFS computations than the seed's one-private-oracle-per-scheme
        layout on the identical workload."""
        factory = _RecordingFactory()
        exp_ball_scheme.run_cell(TINY, "ring", 96, oracle_factory=factory)
        shared_misses = factory.total_misses
        assert len(factory.oracles) == 1

        # Seed layout: each scheme estimate gets its own oracle (and the ball
        # scheme a second, private one), so nothing is shared across schemes.
        graph = generators.cycle_graph(96)
        cell_seed = derive_cell_seed(TINY.seed, exp_ball_scheme.EXPERIMENT_ID, "ring", 96)
        instance_seed = derive_instance_seed(TINY.seed, "ring", 96)
        private_misses = 0
        for build in (
            lambda g, s, o: BallScheme(g, seed=s, oracle=o),
            lambda g, s, o: UniformScheme(g, seed=s),
        ):
            oracle = DistanceOracle(graph)
            scheme = build(graph, cell_seed, oracle)
            route_point(
                graph, scheme, TINY, seed=cell_seed, oracle=oracle, pair_seed=instance_seed
            )
            private_misses += oracle.misses
        assert shared_misses < private_misses

    def test_full_quick_sweep_reuses_bfs(self):
        factory = _RecordingFactory()
        run_all(TINY, jobs=1, oracle_factory=factory, stats={})
        total_cells = sum(len(m.cell_keys(TINY)) for m in EXPERIMENT_MODULES)
        # The run-wide GraphStore shares instances across experiments, so
        # strictly fewer oracles exist than cells — and the shared oracles
        # serve repeat queries from cache.
        assert 0 < len(factory.oracles) < total_cells
        assert factory.total_hits > 0

    def test_measure_scaling_shares_oracle_through_sweep_cache(self):
        cache = SweepCache()
        families = standard_graph_families()
        config = TINY.scaled(sizes=[48])
        instance_seed = derive_instance_seed(config.seed, "ring", 48)
        first = measure_scaling(
            "ring",
            families["ring"],
            lambda g, s, o: UniformScheme(g, seed=s),
            config,
            cache=cache,
        )
        inst = cache.instance("ring", 48, instance_seed, families["ring"])
        misses_after_first = inst.oracle.misses
        second = measure_scaling(
            "ring",
            families["ring"],
            lambda g, s, o: UniformScheme(g, seed=s),
            config,
            cache=cache,
        )
        assert len(cache) == 1
        # The second scheme re-routes the same pairs: all lookups are hits.
        assert inst.oracle.misses == misses_after_first
        assert inst.oracle.hits > 0
        assert first.sizes == second.sizes


class TestArtifacts:
    def test_roundtrip(self, tmp_path):
        artifact = CellArtifact(
            experiment_id="EXP-5",
            family="eps=1 (identity labels)",
            n=128,
            config={"seed": 7, "sizes": [128]},
            payload={"series": {"eps=1 (identity labels)": {"n": 128, "value": 3.5}}},
        )
        from repro.analysis.reporting import write_cell_artifact

        path = write_cell_artifact(tmp_path, artifact)
        assert path.is_file()
        loaded = load_cell_artifact(path)
        assert loaded == artifact

    def test_sweep_persists_every_cell(self, tmp_path):
        stats = {}
        run_all(TINY, only=["EXP-1"], artifacts_dir=tmp_path, stats=stats)
        files = sorted(tmp_path.glob("*.json"))
        assert len(files) == len(stats["executed"]) == len(exp_uniform.cell_keys(TINY))

    def test_results_from_artifacts_match_live_run(self, tmp_path):
        results = run_all(TINY, only=["EXP-1", "EXP-6"], artifacts_dir=tmp_path)
        regenerated = results_from_artifacts(tmp_path)
        assert render_markdown(regenerated) == render_markdown(results)

    def test_results_from_artifacts_empty_dir_raises(self, tmp_path):
        with pytest.raises(ValueError):
            results_from_artifacts(tmp_path)


class TestResume:
    def test_resume_executes_zero_cells_and_reproduces_markdown(self, tmp_path):
        stats = {}
        first = run_all(TINY, only=["EXP-1"], artifacts_dir=tmp_path, stats=stats)
        assert stats["executed"] and not stats["skipped"]
        stats2 = {}
        second = run_all(
            TINY, only=["EXP-1"], artifacts_dir=tmp_path, resume=True, stats=stats2
        )
        assert stats2["executed"] == []
        assert len(stats2["skipped"]) == len(stats["executed"])
        assert render_markdown(second) == render_markdown(first)

    def test_resume_backfills_only_missing_cells(self, tmp_path):
        run_all(TINY, only=["EXP-1"], artifacts_dir=tmp_path)
        victim = sorted(tmp_path.glob("EXP-1__ring__*.json"))[0]
        victim.unlink()
        stats = {}
        run_all(TINY, only=["EXP-1"], artifacts_dir=tmp_path, resume=True, stats=stats)
        assert len(stats["executed"]) == 1
        assert stats["executed"][0].family == "ring"

    def test_resume_ignores_artifacts_from_other_configs(self, tmp_path):
        run_all(TINY, only=["EXP-1"], artifacts_dir=tmp_path)
        other = TINY.scaled(trials=TINY.trials + 1)
        stats = {}
        run_all(other, only=["EXP-1"], artifacts_dir=tmp_path, resume=True, stats=stats)
        assert len(stats["executed"]) == len(exp_uniform.cell_keys(other))
        assert stats["skipped"] == []

    def test_resume_requires_artifacts_dir(self):
        with pytest.raises(ValueError):
            SweepExecutor(TINY, resume=True)


class TestParallelSweep:
    def test_process_pool_matches_serial(self, tmp_path):
        config = TINY.scaled(sizes=[48])
        serial = run_all(config, only=["EXP-1", "EXP-8"], jobs=1)
        parallel = run_all(config, only=["EXP-1", "EXP-8"], jobs=2)
        assert render_markdown(parallel) == render_markdown(serial)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            SweepExecutor(TINY, jobs=0)


class TestCellProtocol:
    @pytest.mark.parametrize("module", EXPERIMENT_MODULES, ids=lambda m: m.EXPERIMENT_ID)
    def test_cells_cover_every_series_point(self, module):
        """run() (cells + assemble) must yield the same report as assembling
        manually computed cells — and every cell key must be hashable/serial."""
        keys = module.cell_keys(TINY)
        assert keys
        for family, n in keys:
            assert isinstance(family, str) and isinstance(n, int)
        cells = {key: module.run_cell(TINY, *key) for key in keys}
        result = module.assemble(TINY, cells)
        assert result.experiment_id == module.EXPERIMENT_ID
        assert result.series
        assert render_markdown({module.EXPERIMENT_ID: result}) == render_markdown(
            {module.EXPERIMENT_ID: module.run(TINY)}
        )
