"""End-to-end integration tests exercising the whole pipeline.

These check qualitative properties of the reproduced results at moderate
sizes with fixed seeds (kept deliberately loose so they are robust to
sampling noise while still failing if a scheme stops working).
"""

import numpy as np
import pytest

from repro import (
    BallScheme,
    Theorem2Scheme,
    UniformScheme,
    estimate_greedy_diameter,
    generators,
    make_scheme,
)
from repro.analysis.scaling import fit_power_law
from repro.core.base import AugmentedGraph
from repro.graphs.distances import bfs_distances, diameter
from repro.routing.greedy import greedy_route


class TestPublicApiQuickstart:
    def test_readme_quickstart_flow(self):
        g = generators.cycle_graph(256)
        scheme = BallScheme(g, seed=1)
        result = estimate_greedy_diameter(g, scheme, num_pairs=8, trials=6, seed=2)
        assert 0 < result.diameter < 128
        assert result.mean <= result.diameter

    def test_registry_round_trip(self):
        g = generators.random_tree(128, seed=0)
        for name in ("uniform", "ball", "theorem2", "kleinberg"):
            scheme = make_scheme(name, g, seed=3)
            estimate = estimate_greedy_diameter(g, scheme, num_pairs=4, trials=4, seed=4)
            assert estimate.diameter <= diameter(g)

    def test_augmented_graph_routing_manual(self):
        g = generators.cycle_graph(64)
        scheme = UniformScheme(g, seed=5)
        aug = AugmentedGraph.from_scheme(scheme, rng=6)
        dist = bfs_distances(g, 32)
        result = greedy_route(g, dist, 0, 32, aug.contact)
        assert result.success
        assert result.steps <= 32


class TestSchemesImproveOverNoAugmentation:
    def test_every_scheme_beats_walking_on_large_ring(self):
        g = generators.cycle_graph(512)
        walking = 256  # graph distance between antipodal nodes
        for name in ("uniform", "ball", "theorem2"):
            scheme = make_scheme(name, g, seed=1)
            estimate = estimate_greedy_diameter(g, scheme, num_pairs=4, trials=8, seed=2)
            assert estimate.diameter < 0.5 * walking, name

    def test_ball_scheme_beats_uniform_on_large_ring(self):
        # Theorem 4's headline: ~n^(1/3) vs ~n^(1/2).  At n = 2048 the gap is
        # large enough to be visible despite Monte-Carlo noise.
        g = generators.cycle_graph(2048)
        uniform = estimate_greedy_diameter(
            g, UniformScheme(g, seed=1), num_pairs=4, trials=8, seed=3
        )
        ball = estimate_greedy_diameter(g, BallScheme(g, seed=1), num_pairs=4, trials=8, seed=3)
        assert ball.diameter < uniform.diameter

    def test_uniform_scaling_exponent_near_half_on_rings(self):
        sizes = [128, 256, 512, 1024]
        values = []
        for n in sizes:
            g = generators.cycle_graph(n)
            est = estimate_greedy_diameter(
                g, UniformScheme(g, seed=1), num_pairs=4, trials=8, seed=n
            )
            values.append(est.diameter)
        fit = fit_power_law(sizes, values)
        assert 0.3 <= fit.exponent <= 0.7

    def test_kleinberg_critical_exponent_beats_overly_local_links_on_torus(self):
        # At simulation sizes the r=2 vs r=0 crossover is not yet visible
        # (both are ~10 steps on a 24x24 torus); the robust finite-size
        # signature of Kleinberg's dichotomy is that the critical exponent
        # clearly beats overly local links (large r), which barely shortcut.
        g = generators.torus_graph([24, 24])
        critical = estimate_greedy_diameter(
            g, make_scheme("kleinberg", g, exponent=2.0, seed=1), num_pairs=4, trials=6, seed=5
        )
        too_local = estimate_greedy_diameter(
            g, make_scheme("kleinberg", g, exponent=4.0, seed=1), num_pairs=4, trials=6, seed=5
        )
        assert critical.diameter <= too_local.diameter


class TestTheorem2Pipeline:
    def test_theorem2_on_interval_graph_with_exact_decomposition(self):
        from repro.decomposition.exact import path_decomposition_of_interval_graph

        graph, intervals = generators.random_interval_graph(200, seed=4)
        pd = path_decomposition_of_interval_graph(intervals)
        scheme = Theorem2Scheme(graph, pd, seed=1)
        estimate = estimate_greedy_diameter(graph, scheme, num_pairs=4, trials=6, seed=6)
        assert estimate.diameter <= diameter(graph)
        assert scheme.witnessed_shape(compute_length=True) <= 2

    def test_ancestor_component_shortcuts_on_long_path(self):
        g = generators.path_graph(1024)
        ancestor_only = Theorem2Scheme(g, uniform_mixture=0.0, seed=1)
        estimate = estimate_greedy_diameter(g, ancestor_only, num_pairs=4, trials=6, seed=7)
        # Walking would take up to 1023 steps; the dyadic ancestor jumps must
        # cut this down by a large factor.
        assert estimate.diameter < 250
