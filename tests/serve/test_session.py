"""RoutingSession facade tests: lifecycle, seed policy, batched identity.

The load-bearing contract lives in ``TestBatchedTrajectoryIdentity``: for
every registered scheme, a batch of queries routed together must be
trajectory-identical (steps, long links, success) to the same queries routed
one at a time — the property that makes the serve daemon's micro-batching
invisible in its results.
"""

import warnings

import numpy as np
import pytest

import repro
from repro import RoutingSession, derive_query_seed, open_session
from repro.core.registry import available_schemes

_FAMILY = "ring"
_N = 96
_SEED = 5


class TestOpenSession:
    def test_opens_and_routes(self):
        with open_session(_FAMILY, _N, seed=_SEED) as session:
            outcome = session.route(2, 70)
            assert outcome.ok and outcome.success
            assert outcome.steps >= 1
            assert outcome.graph_distance == min(68, _N - 68)

    def test_unknown_family_is_a_value_error(self):
        with pytest.raises(ValueError, match="unknown graph family"):
            open_session("klein-bottle", 64)

    def test_unknown_scheme_is_a_value_error(self):
        with pytest.raises(ValueError, match="[Uu]nknown scheme"):
            open_session(_FAMILY, 64, scheme="psychic")

    def test_info_describes_the_session(self):
        with open_session(_FAMILY, _N, seed=_SEED, scheme="uniform") as session:
            session.warm([10, 20])
            info = session.info()
        assert info["family"] == _FAMILY
        assert info["n"] == _N
        assert info["scheme"] == "uniform"
        assert info["seed"] == _SEED
        assert sorted(info["warmed_targets"]) == [10, 20]

    def test_sessions_can_share_a_store(self):
        from repro.graphs.store import GraphStore

        store = GraphStore()
        with open_session(_FAMILY, _N, seed=_SEED, store=store):
            pass
        with open_session(_FAMILY, _N, seed=_SEED, store=store):
            pass
        assert store.stats()["graph_builds"] == 1
        assert store.stats()["graph_hits"] >= 1


class TestSeedPolicy:
    def test_query_seed_is_reproducible_and_order_free(self):
        with open_session(_FAMILY, _N, seed=_SEED) as session:
            a = session.query_seed(3, 40)
            b = session.query_seed(7, 40)
            assert a == session.query_seed(3, 40)
            assert a != b
            # The policy is the public module-level function.
            assert a == derive_query_seed(_SEED, 3, 40)

    def test_nonce_varies_the_trajectory_seed(self):
        assert derive_query_seed(1, 2, 3, nonce=0) != derive_query_seed(1, 2, 3, nonce=1)

    def test_route_uses_the_policy_seed(self):
        with open_session(_FAMILY, _N, seed=_SEED) as session:
            outcome = session.route(3, 40)
            assert outcome.seed == derive_query_seed(_SEED, 3, 40)


class TestRouteQueries:
    def test_error_entries_do_not_poison_the_batch(self):
        with open_session(_FAMILY, _N, seed=_SEED) as session:
            outcomes = session.route_queries(
                [(2, 70, 1), (0, _N + 3, 2), (-1, 10, 3), (5, 60, 4)]
            )
        assert outcomes[0].ok and outcomes[3].ok
        assert not outcomes[1].ok and "target index" in outcomes[1].error
        assert not outcomes[2].ok and "source index" in outcomes[2].error

    def test_block_cache_pins_targets_across_batches(self):
        with open_session(_FAMILY, _N, seed=_SEED) as session:
            session.route_queries([(1, 50, 7)])
            session.route_queries([(2, 50, 8), (3, 60, 9)])
            info = session.info()
            assert set(info["warmed_targets"]) == {50, 60}
            assert info["block_resets"] == 0

    def test_block_cache_resets_at_capacity(self):
        with open_session(_FAMILY, _N, seed=_SEED, scheme="uniform") as session:
            session._max_block_targets = 4
            for target in (10, 20, 30, 40):
                session.route_queries([(1, target, 1)])
            assert session.info()["block_resets"] == 0
            session.route_queries([(1, 50, 1)])
            assert session.info()["block_resets"] == 1
            # Post-reset queries still answer correctly.
            assert session.route(1, 20).ok


class TestRouteMany:
    def test_route_many_matches_simulator_defaults(self):
        from repro.graphs.oracle import DistanceOracle
        from repro.routing.simulator import estimate_expected_steps

        with open_session(_FAMILY, _N, seed=_SEED, scheme="uniform") as session:
            mine = session.route_many([(0, 48), (3, 70)], trials=6)
            reference = estimate_expected_steps(
                session.graph,
                session.scheme,
                [(0, 48), (3, 70)],
                trials=6,
                seed=_SEED,
                oracle=session.oracle,
                engine="lane",
            )
        assert mine.mean == reference.mean
        assert mine.pairs == reference.pairs


class TestDeprecationShim:
    def test_top_level_estimate_expected_steps_warns_and_delegates(self):
        from repro.graphs import generators
        from repro.core.uniform import UniformScheme
        from repro.routing.simulator import estimate_expected_steps as direct

        g = generators.cycle_graph(24)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shimmed = repro.estimate_expected_steps(
                g, UniformScheme(g, seed=1), [(0, 12)], trials=4, seed=2
            )
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        reference = direct(g, UniformScheme(g, seed=1), [(0, 12)], trials=4, seed=2)
        assert shimmed.mean == reference.mean

    def test_simulator_import_path_stays_warning_free(self):
        from repro.graphs import generators
        from repro.core.uniform import UniformScheme
        from repro.routing.simulator import estimate_expected_steps

        g = generators.cycle_graph(24)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            estimate_expected_steps(g, UniformScheme(g, seed=1), [(0, 12)], trials=2, seed=2)
        assert not any(issubclass(w.category, DeprecationWarning) for w in caught)


class TestBatchedTrajectoryIdentity:
    @pytest.mark.parametrize("scheme_name", sorted(available_schemes()))
    def test_batched_equals_single_shot_per_scheme(self, scheme_name):
        pairs = [(3, 70), (11, 48), (60, 5), (80, 33), (2, 90)]
        with open_session(_FAMILY, _N, seed=_SEED, scheme=scheme_name) as session:
            batched = session.route_queries(
                [(s, t, session.query_seed(s, t)) for (s, t) in pairs]
            )
            singles = [session.route(s, t) for (s, t) in pairs]
            reversed_batch = session.route_queries(
                [(s, t, session.query_seed(s, t)) for (s, t) in reversed(pairs)]
            )[::-1]
        for together, alone, shuffled in zip(batched, singles, reversed_batch):
            assert together == alone
            assert together == shuffled

    def test_nonce_changes_the_walk_not_the_contract(self):
        with open_session(_FAMILY, _N, seed=_SEED, scheme="uniform") as session:
            walks = {session.route(4, 70, nonce=i).seed for i in range(5)}
            assert len(walks) == 5


class TestClose:
    def test_close_is_idempotent_and_blocks_reuse(self):
        session = open_session(_FAMILY, _N, seed=_SEED)
        session.close()
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.route(0, 10)


def test_public_surface_exports():
    assert repro.open_session is open_session
    assert repro.RoutingSession is RoutingSession
    assert "ring" in repro.GRAPH_FAMILIES
    assert isinstance(repro.GRAPH_FAMILIES, dict)
    for name in ("Graph", "GRAPH_FAMILIES", "open_session", "RoutingSession"):
        assert name in repro.__all__
