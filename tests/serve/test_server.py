"""In-process RouteServer tests: fan-out, shutdown draining, protocol edges.

Each test boots a real server on an ephemeral localhost port inside its own
``asyncio.run`` loop and talks to it through actual TCP connections — no
daemon subprocess, so the suite stays fast enough for tier 1.
"""

import asyncio
import json

import pytest

from repro import open_session
from repro.serve.client import AsyncRouteClient
from repro.serve.server import RouteServer

_FAMILY = "ring"
_N = 128
_SEED = 11


@pytest.fixture
def session():
    with open_session(_FAMILY, _N, seed=_SEED, scheme="uniform") as s:
        yield s


def _run_with_server(session, scenario, **server_kwargs):
    """Start a server, run ``await scenario(server)``, stop the server."""

    async def runner():
        server = RouteServer(session, port=0, **server_kwargs)
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.stop()

    return asyncio.run(runner())


class TestRouteFanOut:
    def test_concurrent_clients_each_get_their_own_answer(self, session):
        async def scenario(server):
            clients = [
                await AsyncRouteClient().connect(server.host, server.port)
                for _ in range(4)
            ]
            try:
                pending = [
                    client.route(3 + i, (11 * i + 40) % _N)
                    for i, client in enumerate(clients)
                    for _ in (0,)
                ]
                return await asyncio.gather(*pending)
            finally:
                for client in clients:
                    await client.close()

        responses = _run_with_server(session, scenario)
        assert len(responses) == 4
        for i, response in enumerate(responses):
            assert response["ok"], response
            assert response["success"] is True
            # The seed policy is public: every response's lane seed matches it.
            assert response["seed"] == session.query_seed(3 + i, (11 * i + 40) % _N)

    def test_pipelined_queries_are_batched(self, session):
        async def scenario(server):
            client = await AsyncRouteClient().connect(server.host, server.port)
            try:
                pairs = [(i % _N, (i * 7 + 31) % _N) for i in range(40)]
                pairs = [(s, t) for (s, t) in pairs if s != t]
                responses = await asyncio.gather(
                    *(client.route(s, t) for (s, t) in pairs)
                )
                info = await client.info()
                return responses, info
            finally:
                await client.close()

        responses, info = _run_with_server(session, scenario, window=0.005)
        assert all(r["ok"] for r in responses)
        # Far fewer sweeps than queries: the batcher actually batched.
        assert info["batcher"]["batches"] < len(responses) / 2

    def test_batched_answers_match_direct_session_routes(self, session):
        async def scenario(server):
            client = await AsyncRouteClient().connect(server.host, server.port)
            try:
                pairs = [(5 * i + 2, (13 * i + 64) % _N) for i in range(16)]
                return pairs, await asyncio.gather(
                    *(client.route(s, t) for (s, t) in pairs)
                )
            finally:
                await client.close()

        pairs, responses = _run_with_server(session, scenario)
        for (source, target), response in zip(pairs, responses):
            direct = session.route(source, target)
            assert response["ok"] and direct.ok
            assert response["steps"] == direct.steps
            assert response["seed"] == direct.seed
            assert response["long_links"] == direct.long_links

    def test_out_of_range_query_errors_but_connection_survives(self, session):
        async def scenario(server):
            client = await AsyncRouteClient().connect(server.host, server.port)
            try:
                bad = await client.route(0, _N + 5)
                good = await client.route(0, 60)
                return bad, good
            finally:
                await client.close()

        bad, good = _run_with_server(session, scenario)
        assert bad["ok"] is False and "out of range" in bad["error"]
        assert good["ok"] is True


class TestControlOps:
    def test_ping_and_info(self, session):
        async def scenario(server):
            client = await AsyncRouteClient().connect(server.host, server.port)
            try:
                return await client.request({"op": "ping"}), await client.info()
            finally:
                await client.close()

        pong, info = _run_with_server(session, scenario)
        assert pong["ok"] is True and pong["op"] == "ping"
        assert info["family"] == _FAMILY
        assert info["n"] == _N
        assert info["scheme"] == "uniform"
        assert info["max_batch"] == 512
        assert set(info["batcher"]) >= {"submitted", "batches", "count_flushes"}

    def test_malformed_lines_get_error_responses(self, session):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(server.host, server.port)
            try:
                writer.write(b"{not json}\n")
                writer.write(b'{"op": "teleport", "id": 4}\n')
                writer.write(b'{"op": "route", "id": 5, "source": "zero", "target": 3}\n')
                writer.write(b'{"op": "route", "id": 6, "source": 0, "target": 60}\n')
                await writer.drain()
                lines = [await reader.readline() for _ in range(4)]
                return [json.loads(line) for line in lines]
            finally:
                writer.close()

        responses = _run_with_server(session, scenario)
        by_id = {r.get("id"): r for r in responses}
        assert by_id[None]["ok"] is False and "JSON" in by_id[None]["error"]
        assert by_id[4]["ok"] is False and "unknown op" in by_id[4]["error"]
        assert by_id[5]["ok"] is False and "integer" in by_id[5]["error"]
        assert by_id[6]["ok"] is True  # the connection survived all of the above


class TestGracefulShutdown:
    def test_stop_drains_accepted_queries(self, session):
        async def scenario():
            server = RouteServer(session, port=0, window=0.05, max_batch=1000)
            await server.start()
            client = await AsyncRouteClient().connect(server.host, server.port)
            pending = [
                asyncio.ensure_future(client.route(i + 1, (i * 17 + 50) % _N))
                for i in range(8)
            ]
            # Give the requests time to reach the batcher, whose long window
            # would hold them; stop() must flush and answer them anyway.
            await asyncio.sleep(0.01)
            await server.stop()
            responses = await asyncio.gather(*pending)
            await client.close()
            return responses

        responses = asyncio.run(scenario())
        assert len(responses) == 8
        assert all(r["ok"] for r in responses)

    def test_stop_then_connect_is_refused(self, session):
        async def scenario():
            server = RouteServer(session, port=0)
            await server.start()
            port = server.port
            await server.stop()
            with pytest.raises(OSError):
                await asyncio.open_connection(server.host, port)

        asyncio.run(scenario())
