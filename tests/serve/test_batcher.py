"""MicroBatcher tests: flush causes, adaptive deferral, drain, error fan-out.

No pytest-asyncio in the container: each test drives its own event loop with
``asyncio.run`` around an async scenario function.
"""

import asyncio
import threading
import time

import pytest

from repro.serve.batcher import MicroBatcher


def _echo_runner(items):
    """Identity runner tagging each item so provenance is checkable."""
    return [("done", item) for item in items]


class TestFlushCauses:
    def test_count_flush_fires_at_max_batch(self):
        async def scenario():
            batcher = MicroBatcher(_echo_runner, max_batch=4, window=60.0)
            results = await asyncio.gather(*(batcher.submit(i) for i in range(4)))
            await batcher.close()
            return batcher.stats, results

        stats, results = asyncio.run(scenario())
        # The window is a minute: only a count flush can have answered.
        assert stats["count_flushes"] == 1
        assert stats["window_flushes"] == 0
        assert stats["max_batch_seen"] == 4
        assert results == [("done", i) for i in range(4)]

    def test_window_flush_fires_for_partial_batch(self):
        async def scenario():
            batcher = MicroBatcher(_echo_runner, max_batch=1000, window=0.005)
            results = await asyncio.gather(*(batcher.submit(i) for i in range(3)))
            await batcher.close()
            return batcher.stats, results

        stats, results = asyncio.run(scenario())
        assert stats["window_flushes"] == 1
        assert stats["count_flushes"] == 0
        assert results == [("done", i) for i in range(3)]

    def test_zero_window_still_batches_concurrent_submits(self):
        async def scenario():
            batcher = MicroBatcher(_echo_runner, max_batch=1000, window=0.0)
            results = await asyncio.gather(*(batcher.submit(i) for i in range(5)))
            await batcher.close()
            return batcher.stats, results

        stats, results = asyncio.run(scenario())
        # All five submits land on the loop before the call_later(0) fires,
        # so even a zero window packs them into one batch.
        assert stats["batches"] == 1
        assert results == [("done", i) for i in range(5)]


class TestAdaptiveDeferral:
    def test_window_elapsing_mid_sweep_defers_to_idle_flush(self):
        release = threading.Event()

        def slow_runner(items):
            release.wait(timeout=5.0)
            return [("done", item) for item in items]

        async def scenario():
            batcher = MicroBatcher(slow_runner, max_batch=1000, window=0.002)
            first = asyncio.ensure_future(batcher.submit("a"))
            await asyncio.sleep(0.01)  # window elapsed -> sweep for "a" in flight
            late = [asyncio.ensure_future(batcher.submit(i)) for i in range(3)]
            await asyncio.sleep(0.02)  # their window elapses while still in flight
            assert not any(f.done() for f in late)
            release.set()
            results = await asyncio.gather(first, *late)
            await batcher.close()
            return batcher.stats, results

        stats, results = asyncio.run(scenario())
        assert results[0] == ("done", "a")
        assert results[1:] == [("done", i) for i in range(3)]
        # The late trio was deferred past its window and flushed on idle,
        # packed into a single batch.
        assert stats["deferred_windows"] >= 1
        assert stats["idle_flushes"] == 1
        assert stats["batches"] == 2


class TestErrorsAndDrain:
    def test_runner_failure_fans_to_every_waiter(self):
        def failing_runner(items):
            raise RuntimeError("sweep exploded")

        async def scenario():
            batcher = MicroBatcher(failing_runner, max_batch=2, window=60.0)
            results = await asyncio.gather(
                batcher.submit(1), batcher.submit(2), return_exceptions=True
            )
            await batcher.close()
            return results

        results = asyncio.run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)
        assert all("sweep exploded" in str(r) for r in results)

    def test_result_count_mismatch_is_an_error(self):
        async def scenario():
            batcher = MicroBatcher(lambda items: [], max_batch=1, window=60.0)
            try:
                return await asyncio.gather(batcher.submit(1), return_exceptions=True)
            finally:
                await batcher.close()

        (result,) = asyncio.run(scenario())
        assert isinstance(result, RuntimeError)
        assert "0 results for 1 items" in str(result)

    def test_close_drains_pending_batch(self):
        async def scenario():
            batcher = MicroBatcher(_echo_runner, max_batch=1000, window=60.0)
            pending = [asyncio.ensure_future(batcher.submit(i)) for i in range(3)]
            await asyncio.sleep(0)  # submits reach the batcher, window far away
            await batcher.close()
            return batcher.stats, await asyncio.gather(*pending)

        stats, results = asyncio.run(scenario())
        assert stats["drain_flushes"] == 1
        assert results == [("done", i) for i in range(3)]

    def test_submit_after_close_raises(self):
        async def scenario():
            batcher = MicroBatcher(_echo_runner)
            await batcher.close()
            with pytest.raises(RuntimeError, match="closed"):
                await batcher.submit(1)

        asyncio.run(scenario())

    def test_close_is_idempotent(self):
        async def scenario():
            batcher = MicroBatcher(_echo_runner)
            await batcher.close()
            await batcher.close()

        asyncio.run(scenario())


class TestValidation:
    def test_rejects_bad_max_batch(self):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(_echo_runner, max_batch=0)

    def test_rejects_negative_window(self):
        with pytest.raises(ValueError, match="window"):
            MicroBatcher(_echo_runner, window=-0.1)


class TestSingleWorkerSerialization:
    def test_batches_never_overlap(self):
        active = []
        overlaps = []

        def runner(items):
            active.append(1)
            if len(active) > 1:
                overlaps.append(len(active))
            time.sleep(0.002)
            active.pop()
            return list(items)

        async def scenario():
            batcher = MicroBatcher(runner, max_batch=2, window=0.0005)
            await asyncio.gather(*(batcher.submit(i) for i in range(20)))
            await batcher.close()

        asyncio.run(scenario())
        assert overlaps == []
