"""Wire-protocol tests: encoding, request validation, response shapes."""

import json

import pytest

from repro.routing.simulator import QueryOutcome
from repro.serve import protocol


class TestEncode:
    def test_one_compact_line(self):
        line = protocol.encode({"op": "ping", "id": 3})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1
        assert b" " not in line
        assert json.loads(line) == {"op": "ping", "id": 3}


class TestDecodeRequest:
    def test_roundtrip(self):
        message = {"op": "route", "id": 9, "source": 1, "target": 2}
        assert protocol.decode_request(protocol.encode(message)) == message

    def test_rejects_bad_json(self):
        with pytest.raises(protocol.ProtocolError, match="invalid JSON"):
            protocol.decode_request(b"{nope\n")

    def test_rejects_non_object(self):
        with pytest.raises(protocol.ProtocolError, match="JSON object"):
            protocol.decode_request(b"[1, 2]\n")

    def test_rejects_unknown_op(self):
        with pytest.raises(protocol.ProtocolError, match="unknown op"):
            protocol.decode_request(b'{"op": "fly"}\n')

    def test_rejects_missing_op(self):
        with pytest.raises(protocol.ProtocolError, match="unknown op"):
            protocol.decode_request(b'{"id": 1}\n')

    def test_rejects_oversized_line(self):
        line = protocol.encode({"op": "ping", "pad": "x" * protocol.MAX_LINE_BYTES})
        with pytest.raises(protocol.ProtocolError, match="exceeds"):
            protocol.decode_request(line)


class TestParseRouteRequest:
    def test_extracts_fields(self):
        message = {"op": "route", "source": 5, "target": 7, "nonce": 2}
        assert protocol.parse_route_request(message) == (5, 7, 2)

    def test_nonce_defaults_to_zero(self):
        assert protocol.parse_route_request({"op": "route", "source": 1, "target": 2}) == (1, 2, 0)

    def test_missing_target_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="missing 'target'"):
            protocol.parse_route_request({"op": "route", "source": 1})

    @pytest.mark.parametrize("bad", ["3", 3.5, True, None, [3]])
    def test_non_integer_source_rejected(self, bad):
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_route_request({"op": "route", "source": bad, "target": 2})


class TestResponses:
    def test_success_shape(self):
        outcome = QueryOutcome(
            source=1, target=2, seed=77, steps=4, success=True, long_links=1, graph_distance=3
        )
        response = protocol.route_response(8, outcome, 1.23456)
        assert response == {
            "id": 8,
            "ok": True,
            "steps": 4,
            "success": True,
            "long_links": 1,
            "distance": 3,
            "seed": 77,
            "latency_ms": 1.235,
        }

    def test_error_outcome_maps_to_error_response(self):
        outcome = QueryOutcome(source=1, target=99, seed=0, error="target index out of range")
        response = protocol.route_response(8, outcome)
        assert response == {"id": 8, "ok": False, "error": "target index out of range"}

    def test_error_response_keeps_request_id(self):
        assert protocol.error_response(None, "boom") == {"id": None, "ok": False, "error": "boom"}
