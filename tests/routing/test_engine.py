"""Lane-engine tests: trajectory identity, statistical parity, edge cases.

The exact-equivalence contract of the lane engine is that, fed the same
materialized contact table, it walks step-for-step the same routes as the
scalar ``greedy_route`` reference — asserted here per lane for **every**
registered scheme on every graph family (grid, ring, tree, disconnected).
On the default lazy-sampling path the engines draw different random streams,
so those tests are seeded statistical-parity checks instead.
"""

import numpy as np
import pytest

from repro.core.ball_scheme import BallScheme
from repro.core.base import NO_CONTACT
from repro.core.kleinberg import DistancePowerScheme
from repro.core.matrix import MatrixScheme, uniform_matrix
from repro.core.matrix_label import Theorem2Scheme
from repro.core.uniform import UniformScheme
from repro.graphs import generators
from repro.graphs.graph import Graph
from repro.graphs.oracle import DistanceOracle
from repro.routing.engine import LaneBatchResult, materialize_contact_table, route_lanes
from repro.routing.greedy import greedy_route
from repro.routing.simulator import estimate_expected_steps

SCHEME_NAMES = ["uniform", "ball", "theorem2", "kleinberg", "matrix"]
FAMILY_NAMES = ["grid", "ring", "tree", "disconnected"]


def _graph_for(family: str) -> Graph:
    if family == "grid":
        return generators.grid_graph([5, 5])
    if family == "ring":
        return generators.cycle_graph(24)
    if family == "tree":
        return generators.random_tree(26, seed=3)
    if family == "disconnected":
        edges = [(i, (i + 1) % 14) for i in range(14)]
        edges += [(14 + i, 14 + (i + 1) % 9) for i in range(9)]
        return Graph.from_edges(23, edges, name="two-cycles")
    raise AssertionError(family)


def _pairs_for(family: str, graph: Graph):
    if family == "disconnected":
        # Stay within components: 0..13 is one cycle, 14..22 the other.
        return [(0, 7), (3, 10), (14, 18), (22, 16)]
    n = graph.num_nodes
    return [(0, n - 1), (1, n // 2), (n - 1, n // 3)]


def _scheme_for(name: str, graph: Graph, oracle: DistanceOracle):
    if name == "uniform":
        return UniformScheme(graph, seed=11)
    if name == "ball":
        return BallScheme(graph, seed=11, oracle=oracle)
    if name == "theorem2":
        return Theorem2Scheme(graph, seed=11)
    if name == "kleinberg":
        return DistancePowerScheme(graph, 2.0, seed=11)
    if name == "matrix":
        return MatrixScheme(graph, uniform_matrix(graph.num_nodes), seed=11)
    raise AssertionError(name)


def _table_lookup(table: np.ndarray, lane: int):
    def contact_of(u: int):
        c = int(table[lane, u])
        return None if c == NO_CONTACT else c

    return contact_of


class TestTrajectoryIdentity:
    """Lane engine == scalar reference, lane by lane, under a shared table."""

    @pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
    @pytest.mark.parametrize("family", FAMILY_NAMES)
    def test_lane_matches_scalar_reference(self, scheme_name, family):
        graph = _graph_for(family)
        oracle = DistanceOracle(graph)
        scheme = _scheme_for(scheme_name, graph, oracle)
        pairs = _pairs_for(family, graph)
        trials = 5
        table = materialize_contact_table(scheme, len(pairs) * trials, rng=99)
        batch = route_lanes(
            graph, scheme, pairs, trials=trials, seed=1, oracle=oracle, contact_table=table
        )
        for lane in range(len(pairs) * trials):
            source, target = pairs[lane // trials]
            result = greedy_route(
                graph,
                oracle.distances_to(target),
                source,
                target,
                _table_lookup(table, lane),
            )
            assert bool(batch.success[lane]) == result.success
            assert int(batch.steps[lane]) == result.steps
            assert int(batch.long_links[lane]) == result.long_links_used

    @pytest.mark.parametrize("family", FAMILY_NAMES)
    def test_identity_survives_max_steps_budget(self, family):
        graph = _graph_for(family)
        oracle = DistanceOracle(graph)
        scheme = UniformScheme(graph, seed=5)
        pairs = _pairs_for(family, graph)
        trials = 6
        table = materialize_contact_table(scheme, len(pairs) * trials, rng=42)
        for budget in (0, 1, 3):
            batch = route_lanes(
                graph,
                scheme,
                pairs,
                trials=trials,
                seed=1,
                oracle=oracle,
                contact_table=table,
                max_steps=budget,
            )
            for lane in range(len(pairs) * trials):
                source, target = pairs[lane // trials]
                result = greedy_route(
                    graph,
                    oracle.distances_to(target),
                    source,
                    target,
                    _table_lookup(table, lane),
                    max_steps=budget,
                )
                assert bool(batch.success[lane]) == result.success
                assert int(batch.steps[lane]) == result.steps
                assert int(batch.long_links[lane]) == result.long_links_used


class _NoLinksScheme(UniformScheme):
    """No long-range links: greedy routing degenerates to shortest paths."""

    def sample_contact(self, node, rng=None):
        return None


class TestStatisticalParity:
    def test_deterministic_scheme_engines_agree_exactly(self, grid4x4):
        scheme = _NoLinksScheme(grid4x4, seed=0)
        pairs = [(0, 15), (3, 12)]
        lane = estimate_expected_steps(grid4x4, scheme, pairs, trials=4, seed=7, engine="lane")
        scalar = estimate_expected_steps(grid4x4, scheme, pairs, trials=4, seed=7, engine="scalar")
        # Without randomness both engines must compute the exact same numbers.
        assert lane.mean == scalar.mean
        assert lane.diameter == scalar.diameter
        for a, b in zip(lane.pairs, scalar.pairs):
            assert a.stats.mean == b.stats.mean == a.graph_distance

    def test_seeded_parity_on_ring(self):
        # Different RNG streams, same distribution: with enough trials the
        # two engines' means must be close (they estimate the same E(φ,s,t)).
        g = generators.cycle_graph(96)
        scheme = UniformScheme(g, seed=0)
        pairs = [(0, 48)]
        lane = estimate_expected_steps(g, scheme, pairs, trials=600, seed=5, engine="lane")
        scalar = estimate_expected_steps(g, scheme, pairs, trials=600, seed=5, engine="scalar")
        # Compare via overlapping 95% confidence intervals.
        assert lane.pairs[0].stats.ci95_low <= scalar.pairs[0].stats.ci95_high
        assert scalar.pairs[0].stats.ci95_low <= lane.pairs[0].stats.ci95_high

    def test_lane_engine_deterministic_given_seed(self, cycle12):
        scheme = UniformScheme(cycle12, seed=0)
        a = estimate_expected_steps(cycle12, scheme, [(0, 6)], trials=8, seed=3, engine="lane")
        b = estimate_expected_steps(cycle12, scheme, [(0, 6)], trials=8, seed=3, engine="lane")
        assert a.mean == b.mean
        assert a.diameter == b.diameter

    def test_failed_trials_accounting(self):
        g = generators.cycle_graph(64)
        scheme = UniformScheme(g, seed=0)
        estimate = estimate_expected_steps(
            g, scheme, [(0, 32)], trials=64, seed=5, max_steps=10, engine="lane"
        )
        pair = estimate.pairs[0]
        assert estimate.failed_trials > 0
        assert pair.stats.count + pair.failed_trials == 64
        assert pair.stats.maximum <= 10


class TestEngineEdgeCases:
    def test_unknown_engine_rejected(self, cycle12):
        scheme = UniformScheme(cycle12, seed=0)
        with pytest.raises(ValueError, match="unknown engine"):
            estimate_expected_steps(cycle12, scheme, [(0, 6)], trials=2, engine="warp")

    def test_unreachable_pair_rejected(self):
        graph = _graph_for("disconnected")
        scheme = UniformScheme(graph, seed=0)
        with pytest.raises(ValueError, match="not reachable"):
            route_lanes(graph, scheme, [(0, 20)], trials=2, seed=1)

    def test_empty_pairs_rejected(self, cycle12):
        with pytest.raises(ValueError):
            route_lanes(cycle12, UniformScheme(cycle12), [], trials=2)

    def test_bad_contact_table_shape_rejected(self, cycle12):
        scheme = UniformScheme(cycle12, seed=0)
        with pytest.raises(ValueError, match="contact_table"):
            route_lanes(
                cycle12,
                scheme,
                [(0, 6)],
                trials=2,
                contact_table=np.zeros((3, cycle12.num_nodes), dtype=np.int64),
            )

    def test_foreign_scheme_and_oracle_rejected(self, cycle12, path8):
        with pytest.raises(ValueError):
            route_lanes(cycle12, UniformScheme(path8), [(0, 6)], trials=2)
        with pytest.raises(ValueError):
            route_lanes(
                cycle12,
                UniformScheme(cycle12),
                [(0, 6)],
                trials=2,
                oracle=DistanceOracle(path8),
            )

    def test_all_trials_truncated_raises(self):
        g = generators.path_graph(30)
        scheme = _NoLinksScheme(g, seed=0)
        with pytest.raises(ValueError, match="exceeded"):
            estimate_expected_steps(
                g, scheme, [(0, 29)], trials=4, seed=1, max_steps=3, engine="lane"
            )

    def test_batch_result_shape(self, cycle12):
        scheme = UniformScheme(cycle12, seed=0)
        batch = route_lanes(cycle12, scheme, [(0, 6), (1, 7)], trials=3, seed=2)
        assert isinstance(batch, LaneBatchResult)
        assert batch.num_lanes == 6
        assert batch.trials == 3
        np.testing.assert_array_equal(batch.pair_index, [0, 0, 0, 1, 1, 1])
        assert batch.pair_lanes(1) == slice(3, 6)
        assert np.all(batch.success)

    def test_lane_results_shared_with_oracle_cache(self, cycle12):
        # The engine must pull every distance row through the shared oracle.
        oracle = DistanceOracle(cycle12)
        scheme = UniformScheme(cycle12, seed=0)
        estimate_expected_steps(
            cycle12, scheme, [(0, 6), (3, 6), (1, 9)], trials=4, seed=1,
            oracle=oracle, engine="lane",
        )
        assert oracle.cache_size() == 2  # targets {6, 9}
        assert oracle.hits >= 1


class TestLaneSeedsMode:
    """Counter-based per-lane seeding: batch-invariant trajectories."""

    def _seeds(self, count, base=1000):
        return np.asarray([base + 17 * i for i in range(count)], dtype=np.uint64)

    @pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
    def test_lane_trajectories_ignore_batch_composition(self, scheme_name):
        g = generators.cycle_graph(30)
        scheme = _scheme_for(scheme_name, g, DistanceOracle(g))
        pairs = [(0, 15), (3, 20), (7, 28)]
        seeds = self._seeds(3)
        batch = route_lanes(g, scheme, pairs, trials=1, lane_seeds=seeds, max_steps=60)
        for i, pair in enumerate(pairs):
            solo = route_lanes(
                g, scheme, [pair], trials=1, lane_seeds=seeds[i : i + 1], max_steps=60
            )
            assert solo.steps[0] == batch.steps[i]
            assert solo.long_links[0] == batch.long_links[i]
            assert solo.success[0] == batch.success[i]

    def test_rerun_is_bit_identical(self, cycle12):
        scheme = UniformScheme(cycle12, seed=0)
        seeds = self._seeds(4)
        pairs = [(0, 6), (1, 7), (2, 8), (3, 9)]
        a = route_lanes(cycle12, scheme, pairs, trials=1, lane_seeds=seeds)
        b = route_lanes(cycle12, scheme, pairs, trials=1, lane_seeds=seeds)
        np.testing.assert_array_equal(a.steps, b.steps)
        np.testing.assert_array_equal(a.long_links, b.long_links)

    def test_distinct_seeds_draw_distinct_walks(self, cycle12):
        scheme = UniformScheme(cycle12, seed=0)
        pairs = [(0, 6)] * 8
        seeds = self._seeds(8)
        batch = route_lanes(cycle12, scheme, pairs, trials=1, lane_seeds=seeds)
        assert len(set(batch.steps.tolist())) > 1  # not all lanes identical

    def test_lane_seeds_shape_is_validated(self, cycle12):
        scheme = UniformScheme(cycle12, seed=0)
        with pytest.raises(ValueError, match="lane_seeds"):
            route_lanes(
                cycle12, scheme, [(0, 6)], trials=2,
                lane_seeds=np.array([1], dtype=np.uint64),
            )

    def test_lane_seeds_exclusive_with_contact_table(self, cycle12):
        scheme = UniformScheme(cycle12, seed=0)
        table = materialize_contact_table(scheme, 1, np.random.default_rng(0))
        with pytest.raises(ValueError, match="contact_table"):
            route_lanes(
                cycle12, scheme, [(0, 6)], trials=1,
                contact_table=table, lane_seeds=np.array([1], dtype=np.uint64),
            )


class TestInjectedBlocks:
    def test_blocks_match_oracle_path(self, cycle12):
        scheme = UniformScheme(cycle12, seed=0)
        oracle = DistanceOracle(cycle12)
        pairs = [(0, 6), (1, 9), (3, 6)]
        seeds = np.array([5, 6, 7], dtype=np.uint64)
        via_oracle = route_lanes(
            cycle12, scheme, pairs, trials=1, oracle=oracle, lane_seeds=seeds
        )
        dist, next_local = oracle.routing_blocks((6, 9))
        rows = np.array([0, 1, 0], dtype=np.int64)
        via_blocks = route_lanes(
            cycle12, scheme, pairs, trials=1, oracle=oracle,
            lane_seeds=seeds, blocks=(dist, next_local, rows),
        )
        np.testing.assert_array_equal(via_oracle.steps, via_blocks.steps)
        np.testing.assert_array_equal(via_oracle.long_links, via_blocks.long_links)

    def test_bad_pair_rows_rejected(self, cycle12):
        scheme = UniformScheme(cycle12, seed=0)
        oracle = DistanceOracle(cycle12)
        dist, next_local = oracle.routing_blocks((6,))
        with pytest.raises(ValueError, match="pair_rows"):
            route_lanes(
                cycle12, scheme, [(0, 6), (1, 6)], trials=1, seed=1,
                blocks=(dist, next_local, np.array([0], dtype=np.int64)),
            )
        with pytest.raises(ValueError, match="row"):
            route_lanes(
                cycle12, scheme, [(0, 6)], trials=1, seed=1,
                blocks=(dist, next_local, np.array([3], dtype=np.int64)),
            )
