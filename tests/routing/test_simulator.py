"""Unit tests for the Monte-Carlo routing simulator."""

import numpy as np
import pytest

from repro.core.uniform import UniformScheme
from repro.core.ball_scheme import BallScheme
from repro.graphs import generators
from repro.graphs.distances import diameter
from repro.routing.simulator import estimate_expected_steps, estimate_greedy_diameter


class TestEstimateExpectedSteps:
    def test_basic_estimate_structure(self, cycle12):
        scheme = UniformScheme(cycle12, seed=0)
        estimate = estimate_expected_steps(cycle12, scheme, [(0, 6), (3, 9)], trials=8, seed=1)
        assert len(estimate.pairs) == 2
        assert estimate.trials == 8
        assert estimate.diameter >= estimate.pairs[0].mean or estimate.diameter >= estimate.pairs[1].mean
        assert 0.0 <= estimate.long_link_fraction <= 1.0

    def test_steps_bounded_by_graph_distance(self, grid4x4):
        scheme = UniformScheme(grid4x4, seed=0)
        estimate = estimate_expected_steps(grid4x4, scheme, [(0, 15)], trials=16, seed=2)
        pair = estimate.pairs[0]
        assert pair.graph_distance == 6
        assert pair.stats.maximum <= 6
        assert pair.mean <= 6

    def test_deterministic_given_seed(self, cycle12):
        scheme = UniformScheme(cycle12, seed=0)
        a = estimate_expected_steps(cycle12, scheme, [(0, 6)], trials=8, seed=3)
        b = estimate_expected_steps(cycle12, scheme, [(0, 6)], trials=8, seed=3)
        assert a.mean == b.mean
        assert a.diameter == b.diameter

    def test_different_seeds_differ(self):
        g = generators.cycle_graph(128)
        scheme = UniformScheme(g, seed=0)
        a = estimate_expected_steps(g, scheme, [(0, 64)], trials=8, seed=3)
        b = estimate_expected_steps(g, scheme, [(0, 64)], trials=8, seed=4)
        assert a.mean != b.mean

    def test_empty_pairs_rejected(self, cycle12):
        with pytest.raises(ValueError):
            estimate_expected_steps(cycle12, UniformScheme(cycle12), [], trials=4)

    def test_scheme_graph_mismatch_rejected(self, cycle12, path8):
        scheme = UniformScheme(path8, seed=0)
        with pytest.raises(ValueError):
            estimate_expected_steps(cycle12, scheme, [(0, 5)], trials=2)

    def test_mean_consistent_with_pairs(self, cycle12):
        scheme = UniformScheme(cycle12, seed=0)
        estimate = estimate_expected_steps(cycle12, scheme, [(0, 6), (1, 7)], trials=4, seed=5)
        assert estimate.diameter == pytest.approx(max(p.mean for p in estimate.pairs))
        assert estimate.max_pair is not None
        assert estimate.max_pair.mean == estimate.diameter

    def test_as_dict(self, cycle12):
        scheme = UniformScheme(cycle12, seed=0)
        estimate = estimate_expected_steps(cycle12, scheme, [(0, 6)], trials=2, seed=0)
        d = estimate.as_dict()
        assert d["num_pairs"] == 1
        assert d["trials"] == 2


class _NoLinksScheme(UniformScheme):
    """Scheme without long-range links: greedy = deterministic shortest path."""

    def sample_contact(self, node, rng=None):
        return None


class TestFailedTrials:
    def test_all_trials_truncated_raises(self):
        # Without long links every route on a path takes exactly dist steps,
        # so a max_steps budget below that truncates every trial and the
        # pair's expected cost cannot be estimated.
        g = generators.path_graph(30)
        scheme = _NoLinksScheme(g, seed=0)
        with pytest.raises(ValueError):
            estimate_expected_steps(g, scheme, [(0, 29)], trials=4, seed=1, max_steps=3)

    def test_failed_trials_field_zero_without_budget(self, cycle12):
        scheme = UniformScheme(cycle12, seed=0)
        estimate = estimate_expected_steps(cycle12, scheme, [(0, 6)], trials=4, seed=1)
        assert estimate.failed_trials == 0
        assert all(p.failed_trials == 0 for p in estimate.pairs)
        assert "failed_trials" in estimate.as_dict()

    def test_mixed_success_excludes_failures_from_mean(self):
        # On a ring with uniform long links, some trials shortcut under the
        # budget and others exceed it; the mean must be over successes only.
        g = generators.cycle_graph(64)
        scheme = UniformScheme(g, seed=0)
        budget = 10
        estimate = estimate_expected_steps(
            g, scheme, [(0, 32)], trials=64, seed=5, max_steps=budget
        )
        pair = estimate.pairs[0]
        assert estimate.failed_trials > 0
        assert pair.failed_trials == estimate.failed_trials
        assert pair.stats.count + pair.failed_trials == 64
        assert pair.stats.maximum <= budget


class TestSharedOracle:
    def test_oracle_serves_target_distances(self, cycle12):
        from repro.graphs.oracle import DistanceOracle

        oracle = DistanceOracle(cycle12)
        scheme = UniformScheme(cycle12, seed=0)
        estimate = estimate_expected_steps(
            cycle12, scheme, [(0, 6), (3, 6), (1, 9)], trials=4, seed=1, oracle=oracle
        )
        assert len(estimate.pairs) == 3
        # One BFS per distinct target, served through the shared oracle.
        assert oracle.cache_size() == 2
        assert oracle.hits >= 1

    def test_oracle_reused_across_calls_matches_fresh(self, cycle12):
        from repro.graphs.oracle import DistanceOracle

        scheme = UniformScheme(cycle12, seed=0)
        oracle = DistanceOracle(cycle12)
        a = estimate_expected_steps(cycle12, scheme, [(0, 6)], trials=8, seed=3, oracle=oracle)
        b = estimate_expected_steps(cycle12, scheme, [(0, 6)], trials=8, seed=3, oracle=oracle)
        c = estimate_expected_steps(cycle12, scheme, [(0, 6)], trials=8, seed=3)
        assert a.mean == b.mean == c.mean

    def test_foreign_oracle_rejected(self, cycle12, path8):
        from repro.graphs.oracle import DistanceOracle

        scheme = UniformScheme(cycle12, seed=0)
        with pytest.raises(ValueError):
            estimate_expected_steps(
                cycle12, scheme, [(0, 6)], trials=2, oracle=DistanceOracle(path8)
            )


class TestEstimateGreedyDiameter:
    def test_extremal_strategy(self, cycle12):
        scheme = UniformScheme(cycle12, seed=0)
        estimate = estimate_greedy_diameter(cycle12, scheme, num_pairs=4, trials=4, seed=1)
        assert len(estimate.pairs) == 4
        assert estimate.diameter <= diameter(cycle12)

    def test_uniform_strategy(self, cycle12):
        scheme = UniformScheme(cycle12, seed=0)
        estimate = estimate_greedy_diameter(
            cycle12, scheme, num_pairs=4, trials=4, seed=1, pair_strategy="uniform"
        )
        assert len(estimate.pairs) == 4

    def test_unknown_strategy_rejected(self, cycle12):
        with pytest.raises(ValueError):
            estimate_greedy_diameter(
                cycle12, UniformScheme(cycle12), num_pairs=2, trials=2, pair_strategy="bogus"
            )

    def test_long_links_actually_used_on_large_ring(self):
        g = generators.cycle_graph(256)
        scheme = UniformScheme(g, seed=0)
        estimate = estimate_greedy_diameter(g, scheme, num_pairs=4, trials=6, seed=2)
        assert estimate.long_link_fraction > 0.0
        # The augmentation must beat plain shortest-path routing on a big ring.
        assert estimate.diameter < 128

    def test_ball_scheme_beats_no_augmentation(self):
        g = generators.cycle_graph(256)
        scheme = BallScheme(g, seed=0)
        estimate = estimate_greedy_diameter(g, scheme, num_pairs=4, trials=6, seed=2)
        assert estimate.diameter < 128
