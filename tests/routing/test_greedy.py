"""Unit tests for the greedy routing step."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.graphs.distances import bfs_distances
from repro.routing.greedy import greedy_route


def no_contacts(u):
    return None


class TestGreedyRouteWithoutLongLinks:
    def test_follows_shortest_path_on_path_graph(self):
        g = generators.path_graph(10)
        dist = bfs_distances(g, 9)
        result = greedy_route(g, dist, 0, 9, no_contacts)
        assert result.success
        assert result.steps == 9
        assert result.long_links_used == 0

    def test_route_length_equals_distance_without_links(self, small_graphs):
        for g in small_graphs:
            target = g.num_nodes - 1
            dist = bfs_distances(g, target)
            for source in range(0, g.num_nodes, 3):
                result = greedy_route(g, dist, source, target, no_contacts)
                assert result.success
                assert result.steps == dist[source]

    def test_source_equals_target(self, cycle12):
        dist = bfs_distances(cycle12, 4)
        result = greedy_route(cycle12, dist, 4, 4, no_contacts)
        assert result.success
        assert result.steps == 0

    def test_record_path(self):
        g = generators.path_graph(5)
        dist = bfs_distances(g, 4)
        result = greedy_route(g, dist, 0, 4, no_contacts, record_path=True)
        assert result.path == [0, 1, 2, 3, 4]

    def test_local_links_used_property(self):
        g = generators.path_graph(6)
        dist = bfs_distances(g, 5)
        result = greedy_route(g, dist, 0, 5, no_contacts)
        assert result.local_links_used == result.steps


class TestGreedyRouteWithLongLinks:
    def test_long_link_shortcuts(self):
        g = generators.path_graph(100)
        dist = bfs_distances(g, 99)

        def contact(u):
            return 90 if u == 0 else None

        result = greedy_route(g, dist, 0, 99, contact)
        assert result.success
        assert result.steps == 1 + 9  # jump to 90, then walk
        assert result.long_links_used == 1

    def test_long_link_ignored_when_not_closer(self):
        g = generators.path_graph(20)
        dist = bfs_distances(g, 19)

        def contact(u):
            return 0  # always points away from the target

        result = greedy_route(g, dist, 10, 19, contact)
        assert result.steps == 9
        assert result.long_links_used == 0

    def test_self_contact_ignored(self):
        g = generators.path_graph(10)
        dist = bfs_distances(g, 9)
        result = greedy_route(g, dist, 0, 9, lambda u: u)
        assert result.success
        assert result.long_links_used == 0

    def test_distance_strictly_decreases(self):
        g = generators.grid_graph([6, 6])
        dist = bfs_distances(g, 35)
        rng = np.random.default_rng(0)

        def contact(u):
            return int(rng.integers(0, 36))

        result = greedy_route(g, dist, 0, 35, contact, record_path=True)
        assert result.success
        distances_along_route = [dist[v] for v in result.path]
        assert all(b < a for a, b in zip(distances_along_route, distances_along_route[1:]))

    def test_steps_never_exceed_graph_distance(self, small_graphs):
        rng = np.random.default_rng(1)
        for g in small_graphs:
            target = 0
            dist = bfs_distances(g, target)

            def contact(u):
                return int(rng.integers(0, g.num_nodes))

            for source in range(g.num_nodes):
                result = greedy_route(g, dist, source, target, contact)
                assert result.success
                assert result.steps <= dist[source]


class TestTieBreak:
    def test_long_link_preferred_on_tie_with_local(self):
        # Path 0-1-2-3 with a spur 4 hanging off node 1.  From source 3 the
        # best local candidate is 2 (dist 2 to target 0); the non-adjacent
        # contact 4 is also at dist 2 and must win the tie (the documented
        # semantics: prefer the long link on ties).
        from repro.graphs.graph import Graph

        g = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (1, 4)])
        dist = bfs_distances(g, 0)

        def contact(u):
            return 4 if u == 3 else None

        result = greedy_route(g, dist, 3, 0, contact, record_path=True)
        assert result.success
        assert result.long_links_used == 1
        assert result.path[1] == 4
        assert result.steps == 3  # the tie-break never changes the step count

    def test_long_link_not_taken_when_no_progress(self):
        # A contact at the *current* node's distance is no progress and must
        # be ignored even though it "ties" when no local neighbour improves...
        # which cannot happen on a connected graph, so instead check a tie
        # with a strictly-improving local candidate is required to be an
        # improvement over the current node too.
        g = generators.path_graph(10)
        dist = bfs_distances(g, 9)

        def contact(u):
            return u - 1 if u >= 1 else None  # same distance as stepping back

        result = greedy_route(g, dist, 5, 9, contact)
        assert result.success
        assert result.steps == 4
        assert result.long_links_used == 0

    def test_tie_break_does_not_change_step_count(self, small_graphs):
        # Preferring the long link on ties is cosmetic for the step count.
        for g in small_graphs:
            target = 0
            dist = bfs_distances(g, target)
            rng = np.random.default_rng(7)

            def contact(u):
                return int(rng.integers(0, g.num_nodes))

            for source in range(g.num_nodes):
                result = greedy_route(g, dist, source, target, contact)
                assert result.success
                assert result.steps <= dist[source]


class TestValidation:
    def test_unreachable_target_rejected(self):
        from repro.graphs.graph import Graph

        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        dist = bfs_distances(g, 3)
        with pytest.raises(ValueError):
            greedy_route(g, dist, 0, 3, no_contacts)

    def test_wrong_distance_array_shape(self, path8):
        with pytest.raises(ValueError):
            greedy_route(path8, np.zeros(3), 0, 7, no_contacts)

    def test_max_steps_reports_failure(self):
        g = generators.path_graph(50)
        dist = bfs_distances(g, 49)
        result = greedy_route(g, dist, 0, 49, no_contacts, max_steps=5)
        assert not result.success
        assert result.steps == 5
