"""Unit tests for the greedy routing step."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.graphs.distances import bfs_distances
from repro.routing.greedy import greedy_route


def no_contacts(u):
    return None


class TestGreedyRouteWithoutLongLinks:
    def test_follows_shortest_path_on_path_graph(self):
        g = generators.path_graph(10)
        dist = bfs_distances(g, 9)
        result = greedy_route(g, dist, 0, 9, no_contacts)
        assert result.success
        assert result.steps == 9
        assert result.long_links_used == 0

    def test_route_length_equals_distance_without_links(self, small_graphs):
        for g in small_graphs:
            target = g.num_nodes - 1
            dist = bfs_distances(g, target)
            for source in range(0, g.num_nodes, 3):
                result = greedy_route(g, dist, source, target, no_contacts)
                assert result.success
                assert result.steps == dist[source]

    def test_source_equals_target(self, cycle12):
        dist = bfs_distances(cycle12, 4)
        result = greedy_route(cycle12, dist, 4, 4, no_contacts)
        assert result.success
        assert result.steps == 0

    def test_record_path(self):
        g = generators.path_graph(5)
        dist = bfs_distances(g, 4)
        result = greedy_route(g, dist, 0, 4, no_contacts, record_path=True)
        assert result.path == [0, 1, 2, 3, 4]

    def test_local_links_used_property(self):
        g = generators.path_graph(6)
        dist = bfs_distances(g, 5)
        result = greedy_route(g, dist, 0, 5, no_contacts)
        assert result.local_links_used == result.steps


class TestGreedyRouteWithLongLinks:
    def test_long_link_shortcuts(self):
        g = generators.path_graph(100)
        dist = bfs_distances(g, 99)

        def contact(u):
            return 90 if u == 0 else None

        result = greedy_route(g, dist, 0, 99, contact)
        assert result.success
        assert result.steps == 1 + 9  # jump to 90, then walk
        assert result.long_links_used == 1

    def test_long_link_ignored_when_not_closer(self):
        g = generators.path_graph(20)
        dist = bfs_distances(g, 19)

        def contact(u):
            return 0  # always points away from the target

        result = greedy_route(g, dist, 10, 19, contact)
        assert result.steps == 9
        assert result.long_links_used == 0

    def test_self_contact_ignored(self):
        g = generators.path_graph(10)
        dist = bfs_distances(g, 9)
        result = greedy_route(g, dist, 0, 9, lambda u: u)
        assert result.success
        assert result.long_links_used == 0

    def test_distance_strictly_decreases(self):
        g = generators.grid_graph([6, 6])
        dist = bfs_distances(g, 35)
        rng = np.random.default_rng(0)

        def contact(u):
            return int(rng.integers(0, 36))

        result = greedy_route(g, dist, 0, 35, contact, record_path=True)
        assert result.success
        distances_along_route = [dist[v] for v in result.path]
        assert all(b < a for a, b in zip(distances_along_route, distances_along_route[1:]))

    def test_steps_never_exceed_graph_distance(self, small_graphs):
        rng = np.random.default_rng(1)
        for g in small_graphs:
            target = 0
            dist = bfs_distances(g, target)

            def contact(u):
                return int(rng.integers(0, g.num_nodes))

            for source in range(g.num_nodes):
                result = greedy_route(g, dist, source, target, contact)
                assert result.success
                assert result.steps <= dist[source]


class TestValidation:
    def test_unreachable_target_rejected(self):
        from repro.graphs.graph import Graph

        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        dist = bfs_distances(g, 3)
        with pytest.raises(ValueError):
            greedy_route(g, dist, 0, 3, no_contacts)

    def test_wrong_distance_array_shape(self, path8):
        with pytest.raises(ValueError):
            greedy_route(path8, np.zeros(3), 0, 7, no_contacts)

    def test_max_steps_reports_failure(self):
        g = generators.path_graph(50)
        dist = bfs_distances(g, 49)
        result = greedy_route(g, dist, 0, 49, no_contacts, max_steps=5)
        assert not result.success
        assert result.steps == 5
