"""Unit tests for pair samplers."""

import pytest

from repro.graphs import generators
from repro.graphs.distances import bfs_distances, diameter
from repro.graphs.graph import Graph
from repro.routing.sampling import all_pairs, extremal_pairs, uniform_pairs


class TestUniformPairs:
    def test_count_and_distinctness(self, cycle12):
        pairs = uniform_pairs(cycle12, 20, seed=0)
        assert len(pairs) == 20
        assert all(s != t for s, t in pairs)
        assert all(0 <= s < 12 and 0 <= t < 12 for s, t in pairs)

    def test_deterministic_with_seed(self, cycle12):
        assert uniform_pairs(cycle12, 5, seed=3) == uniform_pairs(cycle12, 5, seed=3)

    def test_requires_two_nodes(self):
        from repro.graphs.graph import Graph

        with pytest.raises(ValueError):
            uniform_pairs(Graph.empty(1), 3)


class TestExtremalPairs:
    def test_first_pair_attains_diameter_on_path(self):
        g = generators.path_graph(30)
        pairs = extremal_pairs(g, 4, seed=0)
        s, t = pairs[0]
        assert bfs_distances(g, s)[t] == 29

    def test_pairs_are_far_apart(self, grid4x4):
        pairs = extremal_pairs(grid4x4, 6, seed=1)
        d = diameter(grid4x4)
        for s, t in pairs:
            assert bfs_distances(grid4x4, s)[t] >= d // 2

    def test_requested_count_respected(self, cycle12):
        assert len(extremal_pairs(cycle12, 7, seed=2)) == 7

    def test_includes_reverse_directions(self):
        g = generators.path_graph(16)
        pairs = extremal_pairs(g, 6, seed=0)
        forward = {(s, t) for s, t in pairs}
        assert any((t, s) in forward for s, t in forward)


class TestExtremalPairsDisconnected:
    def test_no_self_pairs_with_isolated_nodes(self):
        # Regression: the reverse (t, s) of a rejected forward draw used to be
        # appended unguarded, emitting (s, s) when s was isolated.
        g = Graph.from_edges(10, [(0, 1), (1, 2), (2, 3)])  # nodes 4..9 isolated
        for seed in range(20):
            pairs = extremal_pairs(g, 8, seed=seed)
            assert len(pairs) == 8
            assert all(s != t for s, t in pairs)

    def test_pairs_stay_within_components(self):
        g = Graph.from_edges(8, [(0, 1), (1, 2), (4, 5), (5, 6), (6, 7)])
        for seed in range(10):
            for s, t in extremal_pairs(g, 6, seed=seed):
                assert bfs_distances(g, s)[t] > 0

    def test_edgeless_graph_rejected(self):
        with pytest.raises(ValueError):
            extremal_pairs(Graph.empty(5), 3, seed=0)


class TestExtremalPairsOracle:
    def test_oracle_backed_sampling_is_identical(self):
        from repro.graphs.generators import cycle_graph
        from repro.graphs.oracle import DistanceOracle

        graph = cycle_graph(32)
        for seed in range(5):
            oracle = DistanceOracle(graph)
            assert extremal_pairs(graph, 6, seed=seed, oracle=oracle) == extremal_pairs(
                graph, 6, seed=seed
            )

    def test_oracle_caches_sampled_sources(self):
        from repro.graphs.generators import cycle_graph
        from repro.graphs.oracle import DistanceOracle

        graph = cycle_graph(32)
        oracle = DistanceOracle(graph)
        pairs = extremal_pairs(graph, 6, seed=3, oracle=oracle)
        before = oracle.misses
        # Each drawn source's BFS array is now cached; it is the *target* of
        # the mirrored pair, so routing to it must not trigger a new BFS.
        for source, _ in pairs[1::2]:
            oracle.distances_from(source)
        assert oracle.misses == before
        assert oracle.hits > 0


class TestAllPairs:
    def test_all_ordered_pairs(self, path8):
        pairs = all_pairs(path8)
        assert len(pairs) == 8 * 7
        assert (0, 7) in pairs and (7, 0) in pairs
        assert (3, 3) not in pairs
