"""Unit tests for routing summary statistics."""

import numpy as np
import pytest

from repro.routing.statistics import bootstrap_mean_ci, summarize


class TestSummarize:
    def test_basic_stats(self):
        stats = summarize([1, 2, 3, 4, 5])
        assert stats.mean == 3.0
        assert stats.minimum == 1 and stats.maximum == 5
        assert stats.count == 5
        assert stats.ci95_low < 3.0 < stats.ci95_high

    def test_single_sample(self):
        stats = summarize([7.0])
        assert stats.mean == 7.0
        assert stats.std == 0.0
        assert stats.ci95_low == stats.ci95_high == 7.0

    def test_constant_samples(self):
        stats = summarize([4, 4, 4, 4])
        assert stats.std == 0.0
        assert stats.ci95_low == 4.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_dict_keys(self):
        d = summarize([1, 2]).as_dict()
        assert set(d) == {"mean", "std", "min", "max", "count", "ci95_low", "ci95_high"}


class TestBootstrap:
    def test_interval_contains_mean_for_well_behaved_sample(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(10.0, 2.0, size=200)
        low, high = bootstrap_mean_ci(samples, seed=1)
        assert low < samples.mean() < high
        assert high - low < 2.0

    def test_deterministic_with_seed(self):
        samples = [1, 2, 3, 4, 5, 6]
        assert bootstrap_mean_ci(samples, seed=2) == bootstrap_mean_ci(samples, seed=2)

    def test_confidence_bounds_validated(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1, 2, 3], confidence=1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([])
