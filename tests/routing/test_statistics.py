"""Unit tests for routing summary statistics."""

import numpy as np
import pytest

from repro.routing.statistics import bootstrap_mean_ci, summarize


class TestSummarize:
    def test_basic_stats(self):
        stats = summarize([1, 2, 3, 4, 5])
        assert stats.mean == 3.0
        assert stats.minimum == 1 and stats.maximum == 5
        assert stats.count == 5
        assert stats.ci95_low < 3.0 < stats.ci95_high

    def test_single_sample(self):
        stats = summarize([7.0])
        assert stats.mean == 7.0
        assert stats.std == 0.0
        assert stats.ci95_low == stats.ci95_high == 7.0

    def test_constant_samples(self):
        stats = summarize([4, 4, 4, 4])
        assert stats.std == 0.0
        assert stats.ci95_low == 4.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_dict_keys(self):
        d = summarize([1, 2]).as_dict()
        assert set(d) == {"mean", "std", "min", "max", "count", "ci95_low", "ci95_high"}


class TestBootstrap:
    def test_interval_contains_mean_for_well_behaved_sample(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(10.0, 2.0, size=200)
        low, high = bootstrap_mean_ci(samples, seed=1)
        assert low < samples.mean() < high
        assert high - low < 2.0

    def test_deterministic_with_seed(self):
        samples = [1, 2, 3, 4, 5, 6]
        assert bootstrap_mean_ci(samples, seed=2) == bootstrap_mean_ci(samples, seed=2)

    def test_confidence_bounds_validated(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1, 2, 3], confidence=1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([])


class TestStudentTQuantile:
    def test_matches_published_tables(self):
        from repro.routing.statistics import student_t_quantile

        known = {
            (0.975, 1): 12.706204736,
            (0.975, 2): 4.302652730,
            (0.975, 5): 2.570581836,
            (0.975, 15): 2.131449546,
            (0.975, 30): 2.042272456,
            (0.95, 10): 1.812461123,
        }
        for (p, df), want in known.items():
            assert abs(student_t_quantile(p, df) - want) < 1e-6

    def test_converges_to_z_for_large_df(self):
        from repro.routing.statistics import student_t_quantile

        assert abs(student_t_quantile(0.975, 100000) - 1.959964) < 1e-3

    def test_invalid_arguments_rejected(self):
        from repro.routing.statistics import student_t_quantile

        with pytest.raises(ValueError):
            student_t_quantile(0.2, 5)
        with pytest.raises(ValueError):
            student_t_quantile(0.975, 0)

    def test_summarize_uses_t_not_z(self):
        """Regression: at trials=16 the old z-based CI was ~8% too narrow."""
        samples = list(range(16))
        stats = summarize(samples)
        arr = np.asarray(samples, dtype=float)
        std = arr.std(ddof=1)
        t_half = 2.131449546 * std / np.sqrt(16)
        z_half = 1.96 * std / np.sqrt(16)
        assert abs((stats.ci95_high - stats.ci95_low) / 2 - t_half) < 1e-9
        assert stats.ci95_high - stats.ci95_low > 2 * z_half


class TestVectorizedBootstrap:
    def test_chunked_draw_matches_single_batch(self):
        """The chunk boundary must not change the generator stream."""
        import repro.routing.statistics as statistics_module

        samples = np.arange(50, dtype=float)
        whole = bootstrap_mean_ci(samples, num_resamples=200, seed=9)
        old_cap = statistics_module._BOOTSTRAP_BATCH_ELEMENTS
        statistics_module._BOOTSTRAP_BATCH_ELEMENTS = 50 * 64  # force chunking
        try:
            chunked = bootstrap_mean_ci(samples, num_resamples=200, seed=9)
        finally:
            statistics_module._BOOTSTRAP_BATCH_ELEMENTS = old_cap
        assert whole == chunked

    def test_interval_narrows_with_sample_size(self):
        rng = np.random.default_rng(3)
        small = bootstrap_mean_ci(rng.normal(0, 1, 20), seed=4)
        large = bootstrap_mean_ci(rng.normal(0, 1, 2000), seed=4)
        assert (large[1] - large[0]) < (small[1] - small[0])
