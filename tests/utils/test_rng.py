"""Unit tests for rng helpers."""

import numpy as np
import pytest

from repro.utils.rng import choice_from_probabilities, ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_from_int(self):
        a = ensure_rng(7)
        b = ensure_rng(7)
        assert a.integers(0, 100) == b.integers(0, 100)

    def test_from_none(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_from_seed_sequence(self):
        seq = np.random.SeedSequence(5)
        assert isinstance(ensure_rng(seq), np.random.Generator)

    def test_invalid_type(self):
        with pytest.raises(TypeError):
            ensure_rng("not a seed")


class TestSpawnRngs:
    def test_count_and_independence(self):
        rngs = spawn_rngs(3, 4)
        assert len(rngs) == 4
        draws = [r.integers(0, 10**9) for r in rngs]
        assert len(set(draws)) == 4

    def test_deterministic(self):
        a = [r.integers(0, 10**9) for r in spawn_rngs(11, 3)]
        b = [r.integers(0, 10**9) for r in spawn_rngs(11, 3)]
        assert a == b

    def test_from_generator(self):
        rngs = spawn_rngs(np.random.default_rng(1), 2)
        assert len(rngs) == 2

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestChoiceFromProbabilities:
    def test_full_distribution(self):
        rng = np.random.default_rng(0)
        outcomes = {choice_from_probabilities(rng, [1, 2], [0.5, 0.5]) for _ in range(100)}
        assert outcomes <= {1, 2}
        assert None not in outcomes

    def test_sub_stochastic_allows_none(self):
        rng = np.random.default_rng(0)
        outcomes = [choice_from_probabilities(rng, [1], [0.1]) for _ in range(200)]
        assert outcomes.count(None) > 100

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            choice_from_probabilities(np.random.default_rng(0), [1, 2], [1.0])

    def test_negative_probability(self):
        with pytest.raises(ValueError):
            choice_from_probabilities(np.random.default_rng(0), [1], [-0.5])

    def test_sum_above_one(self):
        with pytest.raises(ValueError):
            choice_from_probabilities(np.random.default_rng(0), [1, 2], [0.8, 0.8])
