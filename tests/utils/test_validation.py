"""Unit tests for validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import check_node_index, check_positive_int, check_probabilities


class TestCheckPositiveInt:
    def test_accepts_int_and_numpy_int(self):
        assert check_positive_int(3, "x") == 3
        assert check_positive_int(np.int64(5), "x") == 5

    def test_minimum_enforced(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")
        assert check_positive_int(0, "x", minimum=0) == 0

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(3.0, "x")


class TestCheckNodeIndex:
    def test_in_range(self):
        assert check_node_index(2, 5) == 2

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_node_index(5, 5)
        with pytest.raises(ValueError):
            check_node_index(-1, 5)

    def test_type(self):
        with pytest.raises(TypeError):
            check_node_index("a", 5)


class TestCheckProbabilities:
    def test_valid_vector(self):
        arr = check_probabilities([0.2, 0.3])
        assert arr.tolist() == [0.2, 0.3]

    def test_requires_one_dimension(self):
        with pytest.raises(ValueError):
            check_probabilities(np.zeros((2, 2)))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            check_probabilities([-0.1, 0.5])

    def test_sum_above_one_rejected(self):
        with pytest.raises(ValueError):
            check_probabilities([0.7, 0.7])

    def test_stochastic_requirement(self):
        with pytest.raises(ValueError):
            check_probabilities([0.2, 0.3], require_stochastic=True)
        check_probabilities([0.5, 0.5], require_stochastic=True)
