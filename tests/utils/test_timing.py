"""Unit tests for timing helpers."""

from repro.utils.timing import StageTimer, Timer


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            sum(range(10_000))
        assert t.elapsed >= 0.0


class TestStageTimer:
    def test_records_stages_in_order(self):
        timer = StageTimer()
        with timer.time("first"):
            pass
        with timer.time("second"):
            pass
        with timer.time("first"):
            pass
        assert timer.order == ["first", "second"]
        assert timer.total() >= 0.0

    def test_report_mentions_all_stages(self):
        timer = StageTimer()
        with timer.time("alpha"):
            pass
        report = timer.report()
        assert "alpha" in report
        assert "total" in report
