"""Counter-based lane RNG tests: determinism, independence, distribution."""

import numpy as np
import pytest

from repro.utils.counterrng import MAX_UNIFORM_ROWS, lane_step_uniforms, mix64


class TestMix64:
    def test_deterministic_and_dtype_preserving(self):
        x = np.arange(8, dtype=np.uint64)
        assert mix64(x).dtype == np.uint64
        assert np.array_equal(mix64(x), mix64(x))

    def test_scrambles_consecutive_inputs(self):
        hashed = mix64(np.arange(1024, dtype=np.uint64))
        assert len(np.unique(hashed)) == 1024
        # Avalanche sanity: roughly half the bits set on average.
        bits = np.unpackbits(hashed.view(np.uint8)).mean()
        assert 0.45 < bits < 0.55


class TestLaneStepUniforms:
    def test_pure_function_of_seed_and_step(self):
        seeds = np.array([7, 7, 9], dtype=np.uint64)
        steps = np.array([0, 0, 4], dtype=np.int64)
        a = lane_step_uniforms(seeds, steps, 3)
        b = lane_step_uniforms(seeds, steps, 3)
        assert np.array_equal(a, b)
        # Equal (seed, step) pairs get equal uniforms regardless of position.
        assert np.array_equal(a[:, 0], a[:, 1])

    def test_shape_and_range(self):
        seeds = np.arange(100, dtype=np.uint64)
        steps = np.zeros(100, dtype=np.int64)
        out = lane_step_uniforms(seeds, steps, MAX_UNIFORM_ROWS)
        assert out.shape == (MAX_UNIFORM_ROWS, 100)
        assert out.dtype == np.float64
        assert (out >= 0.0).all() and (out < 1.0).all()

    def test_rows_steps_and_seeds_are_independent_streams(self):
        seeds = np.array([42], dtype=np.uint64)
        base = lane_step_uniforms(seeds, np.array([0]), 4)
        next_step = lane_step_uniforms(seeds, np.array([1]), 4)
        other_seed = lane_step_uniforms(np.array([43], dtype=np.uint64), np.array([0]), 4)
        values = set(base.ravel()) | set(next_step.ravel()) | set(other_seed.ravel())
        assert len(values) == 12  # no collisions across rows, steps or seeds

    def test_lane_subset_invariance(self):
        """A lane's draws don't depend on which other lanes share the batch."""
        seeds = np.array([3, 11, 27, 99], dtype=np.uint64)
        steps = np.array([5, 2, 0, 8], dtype=np.int64)
        full = lane_step_uniforms(seeds, steps, 2)
        solo = lane_step_uniforms(seeds[2:3], steps[2:3], 2)
        assert np.array_equal(full[:, 2:3], solo)

    def test_uniformity_is_plausible(self):
        seeds = np.arange(20_000, dtype=np.uint64)
        out = lane_step_uniforms(seeds, np.zeros(20_000, dtype=np.int64), 1)
        assert abs(out.mean() - 0.5) < 0.01
        assert abs(np.percentile(out, 25) - 0.25) < 0.02

    @pytest.mark.parametrize("rows", [0, 5])
    def test_row_bounds_enforced(self, rows):
        with pytest.raises(ValueError, match="rows"):
            lane_step_uniforms(np.array([1], dtype=np.uint64), np.array([0]), rows)
